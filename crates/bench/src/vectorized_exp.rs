//! Scalar-interpreter vs vectorized-kernel execution comparison.
//!
//! The `vectorized` experiment measures the selection operator on the
//! 1M-row zipfian microbenchmark table in four configurations — scalar vs
//! kernel execution, lineage capture off vs on — across three predicate
//! shapes (simple comparison, compound boolean tree, `IN` list), plus the
//! lazy-rewrite scan (an OR'd key-equality chain) both ways. It is the
//! honesty check behind every other BENCH number: capture overhead is now
//! measured against a batch-at-a-time base query, not an artificially slow
//! row-at-a-time interpreter.

use smoke_core::ops::select::{select, SelectOptions};
use smoke_core::{Expr, KernelPlan};
use smoke_datagen::zipf::{zipf_table, ZipfSpec};
use smoke_storage::Value;

use crate::{ms, time_avg, ExpRow, Scale};

/// Number of OR'd key-equality terms in the lazy-rewrite scan shape.
const REWRITE_TERMS: i64 = 16;

/// The `vectorized` experiment: scalar vs kernel latency and speedup rows,
/// with capture off and on.
pub fn vectorized(scale: &Scale) -> Vec<ExpRow> {
    let n = scale.size(1_000_000, 10_000);
    let table = zipf_table(&ZipfSpec {
        theta: 1.0,
        rows: n,
        groups: 100,
        seed: 33,
    });
    let config = format!("n={n},g=100");
    let mut rows = Vec::new();

    let shapes: Vec<(&str, Expr)> = vec![
        ("cmp", Expr::col("v").lt(Expr::lit(50.0))),
        (
            "boolean_tree",
            Expr::col("v")
                .lt(Expr::lit(30.0))
                .or(Expr::col("v").ge(Expr::lit(90.0)))
                .and(Expr::col("z").le(Expr::lit(20))),
        ),
        (
            "in_list",
            Expr::col("z").in_list((1..=8).map(Value::Int).collect()),
        ),
    ];

    for (shape, pred) in &shapes {
        assert!(
            KernelPlan::compile(pred, &table).is_some(),
            "benchmark predicate must exercise the kernel path"
        );
        for capture in [false, true] {
            let cap = if capture { "capture" } else { "baseline" };
            let mk = |kernels: bool| {
                let mut opts = if capture {
                    SelectOptions::inject()
                } else {
                    SelectOptions::baseline()
                };
                opts.use_kernels = kernels;
                opts
            };
            let scalar_opts = mk(false);
            let kernel_opts = mk(true);
            let scalar = time_avg(scale.runs, scale.warmup, || {
                select(&table, pred, &scalar_opts).unwrap()
            });
            let kernel = time_avg(scale.runs, scale.warmup, || {
                select(&table, pred, &kernel_opts).unwrap()
            });
            let cfg = format!("{config},pred={shape},{cap}");
            rows.push(ExpRow::new(
                "vectorized",
                &cfg,
                "scalar",
                "select_ms",
                ms(scalar),
            ));
            rows.push(ExpRow::new(
                "vectorized",
                &cfg,
                "kernel",
                "select_ms",
                ms(kernel),
            ));
            rows.push(ExpRow::new(
                "vectorized",
                &cfg,
                "kernel",
                "speedup_x",
                scalar.as_secs_f64() / kernel.as_secs_f64().max(f64::EPSILON),
            ));
        }
    }

    // Lazy-rewrite scan shape: an OR chain of key equalities, the predicate
    // the planner's LazyRewrite strategy issues. Kernel path via
    // `predicate_rids`, scalar path via the bound interpreter.
    let mut rewrite: Option<Expr> = None;
    for g in 1..=REWRITE_TERMS {
        let term = Expr::col("z").eq(Expr::lit(g));
        rewrite = Some(match rewrite {
            Some(p) => p.or(term),
            None => term,
        });
    }
    let rewrite = rewrite.expect("non-empty chain");
    let scalar = time_avg(scale.runs, scale.warmup, || {
        let bound = rewrite.bind(&table).unwrap();
        let mut out = Vec::with_capacity(table.len());
        for rid in 0..table.len() {
            if bound.eval_bool(&table, rid).unwrap() {
                out.push(rid as u32);
            }
        }
        out
    });
    let kernel = time_avg(scale.runs, scale.warmup, || {
        smoke_core::kernels::predicate_rids(&table, &rewrite).unwrap()
    });
    let cfg = format!("{config},pred=rewrite_{REWRITE_TERMS}term");
    rows.push(ExpRow::new(
        "vectorized",
        &cfg,
        "scalar",
        "scan_ms",
        ms(scalar),
    ));
    rows.push(ExpRow::new(
        "vectorized",
        &cfg,
        "kernel",
        "scan_ms",
        ms(kernel),
    ));
    rows.push(ExpRow::new(
        "vectorized",
        &cfg,
        "kernel",
        "speedup_x",
        scalar.as_secs_f64() / kernel.as_secs_f64().max(f64::EPSILON),
    ));

    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vectorized_experiment_reports_all_configurations() {
        let rows = vectorized(&Scale::tiny());
        // 3 predicate shapes x {baseline, capture} x {scalar, kernel, speedup}
        // + the rewrite-scan triple.
        assert_eq!(rows.len(), 3 * 2 * 3 + 3);
        assert!(rows.iter().all(|r| r.value.is_finite()));
        for metric in ["select_ms", "scan_ms", "speedup_x"] {
            assert!(rows.iter().any(|r| r.metric == metric), "missing {metric}");
        }
        // Capture-on kernel rows exist for every shape (the acceptance
        // criterion compares them against the scalar interpreter).
        for shape in ["cmp", "boolean_tree", "in_list"] {
            assert!(rows
                .iter()
                .any(|r| r.config.contains(shape) && r.config.contains("capture")));
        }
    }

    #[test]
    fn scalar_and_kernel_paths_agree_on_results() {
        let table = zipf_table(&ZipfSpec {
            theta: 1.0,
            rows: 2_000,
            groups: 50,
            seed: 9,
        });
        let pred = Expr::col("v")
            .lt(Expr::lit(40.0))
            .or(Expr::col("z").eq(Expr::lit(3)));
        let kernel = select(&table, &pred, &SelectOptions::inject()).unwrap();
        let scalar = select(&table, &pred, &SelectOptions::inject().scalar()).unwrap();
        assert_eq!(kernel.output, scalar.output);
        assert_eq!(kernel.stats.edges, scalar.stats.edges);
    }
}
