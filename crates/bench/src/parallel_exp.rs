//! Morsel-parallel vs sequential execution comparison.
//!
//! The `parallel` experiment measures selection and group-by (both with
//! lineage capture on) over the 1M-row zipfian microbenchmark table at
//! degrees of parallelism 1, 2, 4, and 8 through the morsel-parallel drivers
//! in `smoke_core::parallel`. DOP 1 delegates to the sequential engine, so
//! its rows double as the baseline every `speedup_x` is computed against.
//!
//! Speedups are whatever the host actually delivers: on a single-core
//! container selection reports ~1x (morsel scheduling is nearly free) and
//! group-by ~0.5x at DOP > 1 (partial-state merges are pure overhead with
//! no second core to pay them back), and those honest numbers are exactly
//! what the artifact should record.

use smoke_core::ops::groupby::GroupByOptions;
use smoke_core::ops::select::SelectOptions;
use smoke_core::parallel::{par_group_by, par_select, ParallelOptions};
use smoke_core::{AggExpr, Expr};
use smoke_datagen::zipf::{zipf_table, ZipfSpec};

use crate::{ms, time_avg, ExpRow, Scale};

/// The degrees of parallelism the experiment sweeps.
const DOPS: [usize; 4] = [1, 2, 4, 8];

/// The `parallel` experiment: capture-on select / group-by latency and
/// speedup at each DOP, plus a `dop=N` technique label per row.
pub fn parallel(scale: &Scale) -> Vec<ExpRow> {
    let n = scale.size(1_000_000, 10_000);
    let table = zipf_table(&ZipfSpec {
        theta: 1.0,
        rows: n,
        groups: 100,
        seed: 33,
    });
    let config = format!("n={n},g=100");
    let pred = Expr::col("v").lt(Expr::lit(50.0));
    let keys = vec!["z".to_string()];
    let aggs = vec![
        AggExpr::count("cnt"),
        AggExpr::sum("v", "total"),
        AggExpr::avg("v", "avg_v"),
    ];

    let mut rows = Vec::new();
    let mut base_select = None;
    let mut base_groupby = None;
    for dop in DOPS {
        let par = ParallelOptions::new(dop);
        let technique = format!("dop={dop}");

        let sel = time_avg(scale.runs, scale.warmup, || {
            par_select(&table, &pred, &SelectOptions::inject(), &par).unwrap()
        });
        let gby = time_avg(scale.runs, scale.warmup, || {
            par_group_by(&table, &keys, &aggs, &GroupByOptions::inject(), &par).unwrap()
        });
        let base_select = *base_select.get_or_insert(sel);
        let base_groupby = *base_groupby.get_or_insert(gby);

        rows.push(ExpRow::new(
            "parallel",
            &config,
            &technique,
            "select_ms",
            ms(sel),
        ));
        rows.push(ExpRow::new(
            "parallel",
            &config,
            &technique,
            "select_speedup_x",
            base_select.as_secs_f64() / sel.as_secs_f64().max(f64::EPSILON),
        ));
        rows.push(ExpRow::new(
            "parallel",
            &config,
            &technique,
            "groupby_ms",
            ms(gby),
        ));
        rows.push(ExpRow::new(
            "parallel",
            &config,
            &technique,
            "groupby_speedup_x",
            base_groupby.as_secs_f64() / gby.as_secs_f64().max(f64::EPSILON),
        ));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoke_core::ops::groupby::group_by;
    use smoke_core::ops::select::select;
    use smoke_storage::Rid;

    #[test]
    fn parallel_experiment_reports_every_dop() {
        let rows = parallel(&Scale::tiny());
        // 4 DOPs x {select_ms, select_speedup_x, groupby_ms, groupby_speedup_x}.
        assert_eq!(rows.len(), DOPS.len() * 4);
        assert!(rows.iter().all(|r| r.value.is_finite()));
        for dop in DOPS {
            let label = format!("dop={dop}");
            assert!(rows.iter().any(|r| r.technique == label), "missing {label}");
        }
        // DOP 1 is its own baseline: both speedups are exactly 1.
        for r in rows.iter().filter(|r| r.technique == "dop=1") {
            if r.metric.ends_with("speedup_x") {
                assert_eq!(r.value, 1.0);
            }
        }
    }

    #[test]
    fn benchmark_workload_is_lineage_equivalent_across_dops() {
        // The exact configuration the experiment times must also be correct:
        // parallel output and lineage equal the sequential engine's.
        let table = zipf_table(&ZipfSpec {
            theta: 1.0,
            rows: 5_000,
            groups: 100,
            seed: 33,
        });
        let pred = Expr::col("v").lt(Expr::lit(50.0));
        let keys = vec!["z".to_string()];
        let aggs = vec![AggExpr::count("cnt"), AggExpr::sum("v", "total")];

        let seq = select(&table, &pred, &SelectOptions::inject()).unwrap();
        let par = par_select(
            &table,
            &pred,
            &SelectOptions::inject(),
            &ParallelOptions::new(8),
        )
        .unwrap();
        assert_eq!(seq.output, par.output);

        let seq = group_by(&table, &keys, &aggs, &GroupByOptions::inject()).unwrap();
        let par = par_group_by(
            &table,
            &keys,
            &aggs,
            &GroupByOptions::inject(),
            &ParallelOptions::new(8),
        )
        .unwrap();
        assert_eq!(seq.output, par.output);
        for g in 0..seq.output.len() as Rid {
            assert_eq!(
                seq.lineage.input(0).backward().lookup(g),
                par.lineage.input(0).backward().lookup(g),
            );
        }
    }
}
