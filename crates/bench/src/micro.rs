//! Single-operator capture microbenchmarks: Figures 5, 6, 7, and 21.

use smoke_core::baselines::logical::{run_logical, LogicalTechnique};
use smoke_core::baselines::physical::{group_by_with_sink, ExternalStoreSink, PhysMemSink};
use smoke_core::ops::groupby::{group_by, true_cardinalities, GroupByOptions};
use smoke_core::ops::join::{hash_join, JoinOptions};
use smoke_core::ops::select::{select, SelectOptions};
use smoke_core::{microbenchmark_aggs, CardinalityHints, Expr, HashKey, PlanBuilder};
use smoke_datagen::zipf::{gids_table, zipf_table, zipf_table_named, ZipfSpec};
use smoke_storage::Database;

use crate::{capture_stat_rows, ms, overhead, time_avg, ExpRow, Scale};

/// Figure 5: group-by aggregation capture latency across relation sizes and
/// group counts for Baseline, Smoke-I, Smoke-D, Logic-Rid, Logic-Tup,
/// Phys-Mem, and Phys-Bdb.
pub fn fig5(scale: &Scale) -> Vec<ExpRow> {
    let mut rows = Vec::new();
    let sizes = [scale.size(100_000, 2_000), scale.size(400_000, 5_000)];
    let group_counts = [100usize, 10_000];
    let keys = vec!["z".to_string()];
    let aggs = microbenchmark_aggs("v");

    for &n in &sizes {
        for &g in &group_counts {
            let spec = ZipfSpec {
                theta: 1.0,
                rows: n,
                groups: g,
                seed: 42,
            };
            let table = zipf_table(&spec);
            let config = format!("n={n},g={g}");

            let baseline = time_avg(scale.runs, scale.warmup, || {
                group_by(&table, &keys, &aggs, &GroupByOptions::baseline()).unwrap()
            });
            let mut push = |technique: &str, latency: std::time::Duration| {
                rows.push(ExpRow::new(
                    "fig5",
                    &config,
                    technique,
                    "capture_ms",
                    ms(latency),
                ));
                rows.push(ExpRow::new(
                    "fig5",
                    &config,
                    technique,
                    "overhead_x",
                    overhead(latency, baseline),
                ));
            };
            push("Baseline", baseline);

            let inject = time_avg(scale.runs, scale.warmup, || {
                group_by(&table, &keys, &aggs, &GroupByOptions::inject()).unwrap()
            });
            push("Smoke-I", inject);

            let defer = time_avg(scale.runs, scale.warmup, || {
                group_by(&table, &keys, &aggs, &GroupByOptions::defer()).unwrap()
            });
            push("Smoke-D", defer);

            // Smoke-I with true group cardinalities (the "+TC" result quoted
            // inline in §6.1.1).
            let hints = true_cardinalities(&table, &keys).unwrap();
            let inject_tc = time_avg(scale.runs, scale.warmup, || {
                group_by(
                    &table,
                    &keys,
                    &aggs,
                    &GroupByOptions::inject_with_hints(hints.clone()),
                )
                .unwrap()
            });
            push("Smoke-I+TC", inject_tc);

            // Logical baselines run on the plan form of the same query.
            let mut db = Database::new();
            db.register(table.clone()).unwrap();
            let plan = PlanBuilder::scan("zipf")
                .group_by(&["z"], aggs.clone())
                .build();
            let logic_rid = time_avg(scale.runs, scale.warmup, || {
                run_logical(&plan, &db, LogicalTechnique::LogicRid).unwrap()
            });
            push("Logic-Rid", logic_rid);
            let logic_tup = time_avg(scale.runs, scale.warmup, || {
                run_logical(&plan, &db, LogicalTechnique::LogicTup).unwrap()
            });
            push("Logic-Tup", logic_tup);

            // Physical baselines.
            let phys_mem = time_avg(scale.runs, scale.warmup, || {
                let mut sink = PhysMemSink::new();
                group_by_with_sink(&table, &keys, &aggs, &mut sink).unwrap()
            });
            push("Phys-Mem", phys_mem);
            let phys_bdb = time_avg(scale.runs.min(2), 0, || {
                let mut sink = ExternalStoreSink::new();
                group_by_with_sink(&table, &keys, &aggs, &mut sink).unwrap()
            });
            push("Phys-Bdb", phys_bdb);

            // Where the capture overhead goes (rid resizes, edges written,
            // lineage bytes) — the paper's overhead breakdowns, recorded in
            // the same artifact as the latency rows.
            for (technique, opts) in [
                ("Smoke-I", GroupByOptions::inject()),
                ("Smoke-D", GroupByOptions::defer()),
            ] {
                let out = group_by(&table, &keys, &aggs, &opts).unwrap();
                rows.extend(capture_stat_rows("fig5", &config, technique, &out.stats));
            }
        }
    }
    rows
}

/// Figure 6: primary-key / foreign-key join capture latency for Baseline,
/// Logic-Idx, Smoke-I, and Smoke-I+TC.
pub fn fig6(scale: &Scale) -> Vec<ExpRow> {
    let mut rows = Vec::new();
    let sizes = [scale.size(200_000, 5_000), scale.size(500_000, 10_000)];
    let group_counts = [100usize, 10_000];

    for &n in &sizes {
        for &g in &group_counts {
            let left = gids_table(g);
            let right = zipf_table(&ZipfSpec {
                theta: 1.0,
                rows: n,
                groups: g,
                seed: 13,
            });
            let left_keys = vec!["id".to_string()];
            let right_keys = vec!["z".to_string()];
            let config = format!("n={n},g={g}");

            let baseline = time_avg(scale.runs, scale.warmup, || {
                hash_join(
                    &left,
                    &right,
                    &left_keys,
                    &right_keys,
                    &JoinOptions::baseline(),
                )
                .unwrap()
            });
            let mut push = |technique: &str, latency: std::time::Duration| {
                rows.push(ExpRow::new(
                    "fig6",
                    &config,
                    technique,
                    "capture_ms",
                    ms(latency),
                ));
                rows.push(ExpRow::new(
                    "fig6",
                    &config,
                    technique,
                    "overhead_x",
                    overhead(latency, baseline),
                ));
            };
            push("Baseline", baseline);

            let inject = time_avg(scale.runs, scale.warmup, || {
                hash_join(
                    &left,
                    &right,
                    &left_keys,
                    &right_keys,
                    &JoinOptions::inject(),
                )
                .unwrap()
            });
            push("Smoke-I", inject);

            // True match cardinalities per join key.
            let hints = true_cardinalities(&right, &right_keys).unwrap();
            let tc_opts = JoinOptions::inject().with_hints(hints);
            let inject_tc = time_avg(scale.runs, scale.warmup, || {
                hash_join(&left, &right, &left_keys, &right_keys, &tc_opts).unwrap()
            });
            push("Smoke-I+TC", inject_tc);

            let mut db = Database::new();
            db.register(left.clone()).unwrap();
            db.register(right.clone()).unwrap();
            let plan = PlanBuilder::scan("gids")
                .join(PlanBuilder::scan("zipf"), &["id"], &["z"])
                .build();
            let logic_idx = time_avg(scale.runs.min(2), 0, || {
                run_logical(&plan, &db, LogicalTechnique::LogicIdx).unwrap()
            });
            push("Logic-Idx", logic_idx);
        }
    }
    rows
}

/// Figure 7: many-to-many join capture latency (output not materialized) for
/// Smoke-I, Smoke-D-DeferForw, and Smoke-D.
pub fn fig7(scale: &Scale) -> Vec<ExpRow> {
    let mut rows = Vec::new();
    let left_groups = [10usize, 100];
    let right_sizes = [
        scale.size(10_000, 1_000),
        scale.size(30_000, 2_000),
        scale.size(60_000, 4_000),
    ];
    for &lg in &left_groups {
        let left = zipf_table_named(
            &ZipfSpec {
                theta: 1.0,
                rows: 1_000,
                groups: lg,
                seed: 3,
            },
            "zipf1",
        );
        for &rn in &right_sizes {
            let right = zipf_table_named(
                &ZipfSpec {
                    theta: 1.0,
                    rows: rn,
                    groups: 100,
                    seed: 4,
                },
                "zipf2",
            );
            let config = format!("left_groups={lg},right_n={rn}");
            let keys = (vec!["z".to_string()], vec!["z".to_string()]);
            for (technique, opts) in [
                ("Smoke-I", JoinOptions::inject().without_output()),
                (
                    "Smoke-D-DeferForw",
                    JoinOptions::defer_forward().without_output(),
                ),
                ("Smoke-D", JoinOptions::defer().without_output()),
            ] {
                let latency = time_avg(scale.runs, scale.warmup, || {
                    hash_join(&left, &right, &keys.0, &keys.1, &opts).unwrap()
                });
                rows.push(ExpRow::new(
                    "fig7",
                    &config,
                    technique,
                    "capture_ms",
                    ms(latency),
                ));
            }
        }
    }
    rows
}

/// Figure 21 (Appendix G.1): selection capture latency with and without
/// selectivity estimates, across predicate selectivities.
pub fn fig21(scale: &Scale) -> Vec<ExpRow> {
    let mut rows = Vec::new();
    let sizes = [scale.size(200_000, 5_000), scale.size(500_000, 10_000)];
    let selectivities = [0.01, 0.1, 0.25, 0.5];
    for &n in &sizes {
        let table = zipf_table(&ZipfSpec {
            theta: 1.0,
            rows: n,
            groups: 100,
            seed: 8,
        });
        for &sel in &selectivities {
            let predicate = Expr::col("v").lt(Expr::lit(100.0 * sel));
            let config = format!("n={n},sel={sel}");
            let baseline = time_avg(scale.runs, scale.warmup, || {
                select(&table, &predicate, &SelectOptions::baseline()).unwrap()
            });
            rows.push(ExpRow::new(
                "fig21",
                &config,
                "Baseline",
                "capture_ms",
                ms(baseline),
            ));
            let inject = time_avg(scale.runs, scale.warmup, || {
                select(&table, &predicate, &SelectOptions::inject()).unwrap()
            });
            rows.push(ExpRow::new(
                "fig21",
                &config,
                "Smoke-I",
                "capture_ms",
                ms(inject),
            ));
            rows.push(ExpRow::new(
                "fig21",
                &config,
                "Smoke-I",
                "overhead_x",
                overhead(inject, baseline),
            ));
            let estimated = time_avg(scale.runs, scale.warmup, || {
                select(
                    &table,
                    &predicate,
                    &SelectOptions::inject_with_estimate(sel),
                )
                .unwrap()
            });
            rows.push(ExpRow::new(
                "fig21",
                &config,
                "Smoke-I+EC",
                "capture_ms",
                ms(estimated),
            ));
            rows.push(ExpRow::new(
                "fig21",
                &config,
                "Smoke-I+EC",
                "overhead_x",
                overhead(estimated, baseline),
            ));
        }
    }
    rows
}

/// Builds per-key cardinality hints for an arbitrary key (test helper shared
/// with the criterion benches).
pub fn single_key_hint(key: i64, cardinality: usize) -> CardinalityHints {
    let mut per_key = std::collections::HashMap::new();
    per_key.insert(HashKey::Int(key), cardinality);
    CardinalityHints::with_per_key(per_key)
}

/// CSR vs Vec-of-RidArrays: backward-trace and composition throughput plus
/// heap footprint on the 10k-row / 100-group zipfian microbench table. CI
/// serializes these rows into the `BENCH_csr.json` artifact so every PR
/// leaves a comparable perf trajectory.
pub fn csr(scale: &Scale) -> Vec<ExpRow> {
    use smoke_lineage::{compose_backward, LineageIndex, RidArray};
    use smoke_storage::Rid;

    let n = scale.size(10_000, 1_000);
    let table = zipf_table(&ZipfSpec {
        theta: 1.0,
        rows: n,
        groups: 100,
        seed: 33,
    });
    let captured = group_by(
        &table,
        &["z".to_string()],
        &microbenchmark_aggs("v"),
        &GroupByOptions::inject(),
    )
    .unwrap();
    let vec_of_vecs = captured.lineage.input(0).backward().clone();
    let csr = vec_of_vecs.clone().finalize();
    let config = format!("n={n},g=100,theta=1.0");
    let positions: Vec<Rid> = (0..captured.output.len() as Rid).collect();
    // Selection-shaped child for the composition measurement (intermediate
    // rid -> base rid over a base relation twice as large).
    let child = LineageIndex::Array(RidArray::from_vec((0..n as Rid).map(|r| r * 2).collect()));

    let mut rows = Vec::new();
    for (name, index) in [("VecOfVecs", &vec_of_vecs), ("CSR", &csr)] {
        let trace = time_avg(scale.runs, scale.warmup, || index.trace_set(&positions));
        rows.push(ExpRow::new("csr", &config, name, "trace_ms", ms(trace)));
        let compose = time_avg(scale.runs, scale.warmup, || compose_backward(index, &child));
        rows.push(ExpRow::new("csr", &config, name, "compose_ms", ms(compose)));
        rows.push(ExpRow::new(
            "csr",
            &config,
            name,
            "heap_bytes",
            index.heap_bytes() as f64,
        ));
    }
    // Capture-side overhead breakdown for the instrumented group-by that
    // produced the index under test.
    rows.extend(capture_stat_rows(
        "csr",
        &config,
        "Smoke-I",
        &captured.stats,
    ));
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    fn techniques(rows: &[ExpRow]) -> std::collections::HashSet<String> {
        rows.iter().map(|r| r.technique.clone()).collect()
    }

    #[test]
    fn fig5_reports_all_techniques() {
        let rows = fig5(&Scale::tiny());
        let t = techniques(&rows);
        for expected in [
            "Baseline",
            "Smoke-I",
            "Smoke-D",
            "Smoke-I+TC",
            "Logic-Rid",
            "Logic-Tup",
            "Phys-Mem",
            "Phys-Bdb",
        ] {
            assert!(t.contains(expected), "missing {expected}");
        }
        assert!(rows.iter().all(|r| r.value.is_finite()));
    }

    #[test]
    fn fig6_and_fig7_produce_rows() {
        let rows6 = fig6(&Scale::tiny());
        assert!(techniques(&rows6).contains("Logic-Idx"));
        let rows7 = fig7(&Scale::tiny());
        assert_eq!(techniques(&rows7).len(), 3);
        assert_eq!(rows7.len(), 2 * 3 * 3);
    }

    #[test]
    fn csr_rows_cover_both_representations_and_csr_is_smaller() {
        let rows = csr(&Scale::tiny());
        let t = techniques(&rows);
        assert!(t.contains("CSR") && t.contains("VecOfVecs"));
        let heap = |tech: &str| {
            rows.iter()
                .find(|r| r.technique == tech && r.metric == "heap_bytes")
                .map(|r| r.value)
                .unwrap()
        };
        assert!(heap("CSR") < heap("VecOfVecs"));
        assert!(rows.iter().all(|r| r.value.is_finite()));
        // 3 metrics per representation + 3 capture-overhead rows.
        assert_eq!(rows.len(), 9);
        for metric in ["rid_resizes", "edges", "lineage_bytes"] {
            assert!(
                rows.iter()
                    .any(|r| r.technique == "Smoke-I" && r.metric == metric),
                "missing capture stat {metric}"
            );
        }
    }

    #[test]
    fn fig21_covers_selectivities() {
        let rows = fig21(&Scale::tiny());
        assert!(techniques(&rows).contains("Smoke-I+EC"));
        let configs: std::collections::HashSet<&str> =
            rows.iter().map(|r| r.config.as_str()).collect();
        assert!(configs.len() >= 8);
    }
}
