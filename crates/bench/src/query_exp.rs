//! Lineage query performance (Figure 9).
//!
//! The backward lineage query `SELECT * FROM Lb(o ∈ Q(zipf), zipf)` is
//! evaluated for every output group of the group-by microbenchmark query,
//! under varying zipfian skew, with: Smoke-L (secondary index scan over the
//! captured indexes), Lazy (selection scan on the group key), the annotated
//! relations of Logic-Rid / Logic-Tup (selection scan on a wider relation),
//! and Phys-Bdb (index lookups through the external store).

use smoke_core::baselines::logical::{run_logical, scan_annotated_backward, LogicalTechnique};
use smoke_core::baselines::physical::{group_by_with_sink, ExternalStoreSink};
use smoke_core::lazy::{backward_predicate, lazy_backward};
use smoke_core::ops::groupby::{group_by, GroupByOptions};
use smoke_core::query::gather_rows;
use smoke_core::{microbenchmark_aggs, PlanBuilder};
use smoke_datagen::zipf::{zipf_table, ZipfSpec};
use smoke_storage::{Database, Rid};

use crate::{ms, time, ExpRow, Scale};

/// Figure 9: backward lineage query latency across data skews.
pub fn fig9(scale: &Scale) -> Vec<ExpRow> {
    let mut rows = Vec::new();
    let n = scale.size(300_000, 10_000);
    let groups = scale.size(5_000, 200);
    let keys = vec!["z".to_string()];
    let aggs = microbenchmark_aggs("v");

    for theta in [0.0, 0.4, 0.8, 1.6] {
        let table = zipf_table(&ZipfSpec {
            theta,
            rows: n,
            groups,
            seed: 21,
        });
        let config = format!("theta={theta},n={n},g={groups}");

        // Smoke-L: capture once, evaluate the lineage query per output group.
        let captured = group_by(&table, &keys, &aggs, &GroupByOptions::inject()).unwrap();
        let backward = captured.lineage.input(0).backward();
        let sample: Vec<Rid> = sample_groups(captured.output.len(), 64);

        let mut smoke_total = 0.0;
        for &g in &sample {
            let (_, d) = time(|| gather_rows(&table, &backward.lookup(g)));
            smoke_total += ms(d);
        }
        rows.push(ExpRow::new(
            "fig9",
            &config,
            "Smoke-L",
            "avg_query_ms",
            smoke_total / sample.len() as f64,
        ));

        // Lazy: selection scan on the group key.
        let mut lazy_total = 0.0;
        for &g in &sample {
            let key_value = captured.output.value(g as usize, 0);
            let pred = backward_predicate(&keys, &[key_value], None);
            let (matched, d) = time(|| lazy_backward(&table, &pred).unwrap());
            let (_, gather) = time(|| gather_rows(&table, &matched));
            lazy_total += ms(d + gather);
        }
        rows.push(ExpRow::new(
            "fig9",
            &config,
            "Lazy",
            "avg_query_ms",
            lazy_total / sample.len() as f64,
        ));

        // Logic-Rid / Logic-Tup: scan of the annotated relation.
        let mut db = Database::new();
        db.register(table.clone()).unwrap();
        let plan = PlanBuilder::scan("zipf")
            .group_by(&["z"], aggs.clone())
            .build();
        for (name, technique) in [
            ("Logic-Rid", LogicalTechnique::LogicRid),
            ("Logic-Tup", LogicalTechnique::LogicTup),
        ] {
            let (capture, _) = run_logical(&plan, &db, technique).unwrap();
            let mut total = 0.0;
            for &g in &sample {
                let (rids, d) = time(|| scan_annotated_backward(&capture, g, "zipf").unwrap());
                let (_, gather) = time(|| gather_rows(&table, &rids));
                total += ms(d + gather);
            }
            rows.push(ExpRow::new(
                "fig9",
                &config,
                name,
                "avg_query_ms",
                total / sample.len() as f64,
            ));
        }

        // Phys-Bdb: cursor reads through the external store.
        let mut sink = ExternalStoreSink::new();
        group_by_with_sink(&table, &keys, &aggs, &mut sink).unwrap();
        let mut bdb_total = 0.0;
        for &g in &sample {
            let (rids, d) = time(|| sink.backward(g));
            let (_, gather) = time(|| gather_rows(&table, &rids));
            bdb_total += ms(d + gather);
        }
        rows.push(ExpRow::new(
            "fig9",
            &config,
            "Phys-Bdb",
            "avg_query_ms",
            bdb_total / sample.len() as f64,
        ));
    }
    rows
}

/// Deterministically samples up to `limit` group ids out of `total`.
pub fn sample_groups(total: usize, limit: usize) -> Vec<Rid> {
    if total <= limit {
        return (0..total as Rid).collect();
    }
    let step = total / limit;
    (0..limit).map(|i| (i * step) as Rid).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_bounded_and_deterministic() {
        assert_eq!(sample_groups(5, 10), vec![0, 1, 2, 3, 4]);
        let s = sample_groups(1000, 10);
        assert_eq!(s.len(), 10);
        assert_eq!(s, sample_groups(1000, 10));
    }

    #[test]
    fn fig9_reports_every_technique_per_skew() {
        let rows = fig9(&Scale::tiny());
        let techniques: std::collections::HashSet<&str> =
            rows.iter().map(|r| r.technique.as_str()).collect();
        for t in ["Smoke-L", "Lazy", "Logic-Rid", "Logic-Tup", "Phys-Bdb"] {
            assert!(techniques.contains(t), "missing {t}");
        }
        // 4 skews × 5 techniques.
        assert_eq!(rows.len(), 20);
    }
}
