//! Application experiments: crossfilter (Figures 13 and 14) and data
//! profiling (Figure 15).

use smoke_apps::crossfilter::{CrossfilterSession, CrossfilterTechnique};
use smoke_apps::profiling::{check_all_fds, ProfilingTechnique};
use smoke_datagen::ontime::{view_dimensions, OntimeSpec};
use smoke_datagen::physician::{paper_fds, PhysicianSpec};
use smoke_storage::Rid;

use crate::{ms, time, ExpRow, Scale};

/// Per-view interaction sample size used to keep the harness fast; the
/// cumulative numbers of Figure 13 are extrapolated from the per-interaction
/// means, as the distribution across bars of one view is homogeneous for
/// every technique.
const INTERACTION_SAMPLE: usize = 12;

/// Figures 13 & 14: crossfilter build cost, per-interaction latency per view,
/// and extrapolated cumulative latency per technique.
pub fn fig13_14(scale: &Scale) -> Vec<ExpRow> {
    let base = OntimeSpec {
        rows: scale.size(150_000, 5_000),
        seed: 17,
    }
    .generate();
    let dims = view_dimensions();
    let mut rows = Vec::new();

    for technique in [
        CrossfilterTechnique::Lazy,
        CrossfilterTechnique::BackwardTrace,
        CrossfilterTechnique::BackwardForwardTrace,
        CrossfilterTechnique::PartialCube,
    ] {
        let name = technique_name(technique);
        let (session, build) =
            time(|| CrossfilterSession::build(base.clone(), &dims, technique).unwrap());
        rows.push(ExpRow::new("fig13", "build", name, "latency_ms", ms(build)));

        let mut cumulative_ms = ms(build);
        for (view_idx, view) in session.views().iter().enumerate() {
            let bars = view.bars();
            let sample: Vec<Rid> = crate::query_exp::sample_groups(bars, INTERACTION_SAMPLE);
            let mut total = 0.0;
            for &bar in &sample {
                let (_, d) = time(|| session.interact(view_idx, bar).unwrap());
                total += ms(d);
            }
            let mean = total / sample.len().max(1) as f64;
            rows.push(ExpRow::new(
                "fig14",
                format!("view={}", view.dimension),
                name,
                "interaction_ms",
                mean,
            ));
            cumulative_ms += mean * bars as f64;
        }
        rows.push(ExpRow::new(
            "fig13",
            "cumulative(all interactions)",
            name,
            "latency_ms",
            cumulative_ms,
        ));
    }
    rows
}

fn technique_name(technique: CrossfilterTechnique) -> &'static str {
    match technique {
        CrossfilterTechnique::Lazy => "Lazy",
        CrossfilterTechnique::BackwardTrace => "BT",
        CrossfilterTechnique::BackwardForwardTrace => "BT+FT",
        CrossfilterTechnique::PartialCube => "DataCube",
    }
}

/// Figure 15: FD-violation evaluation and bipartite-graph construction
/// latency for Metanome-UG, Smoke-UG, and Smoke-CD over the four paper FDs.
pub fn fig15(scale: &Scale) -> Vec<ExpRow> {
    let table = PhysicianSpec {
        rows: scale.size(120_000, 4_000),
        practices: scale.size(4_000, 200),
        violation_rate: 0.02,
        seed: 23,
    }
    .generate();
    let fds = paper_fds();
    let mut rows = Vec::new();
    for technique in [
        ProfilingTechnique::MetanomeUg,
        ProfilingTechnique::SmokeUg,
        ProfilingTechnique::SmokeCd,
    ] {
        let name = match technique {
            ProfilingTechnique::MetanomeUg => "Metanome-UG",
            ProfilingTechnique::SmokeUg => "Smoke-UG",
            ProfilingTechnique::SmokeCd => "Smoke-CD",
        };
        let reports = check_all_fds(&table, &fds, technique).unwrap();
        for report in &reports {
            rows.push(ExpRow::new(
                "fig15",
                format!("{}->{}", report.fd.lhs, report.fd.rhs),
                name,
                "latency_ms",
                ms(report.elapsed),
            ));
            rows.push(ExpRow::new(
                "fig15",
                format!("{}->{}", report.fd.lhs, report.fd.rhs),
                name,
                "violations",
                report.violation_count() as f64,
            ));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossfilter_experiment_covers_all_techniques_and_views() {
        let rows = fig13_14(&Scale::tiny());
        let techniques: std::collections::HashSet<&str> =
            rows.iter().map(|r| r.technique.as_str()).collect();
        for t in ["Lazy", "BT", "BT+FT", "DataCube"] {
            assert!(techniques.contains(t), "missing {t}");
        }
        // Each technique reports 4 per-view means plus build and cumulative.
        let btft: Vec<&ExpRow> = rows.iter().filter(|r| r.technique == "BT+FT").collect();
        assert_eq!(btft.len(), 6);
    }

    #[test]
    fn profiling_experiment_reports_consistent_violation_counts() {
        let rows = fig15(&Scale::tiny());
        // For every FD, all techniques must agree on the number of violations.
        let fds: std::collections::HashSet<&str> = rows.iter().map(|r| r.config.as_str()).collect();
        for fd in fds {
            let counts: std::collections::HashSet<i64> = rows
                .iter()
                .filter(|r| r.config == fd && r.metric == "violations")
                .map(|r| r.value as i64)
                .collect();
            assert_eq!(counts.len(), 1, "techniques disagree on {fd}");
        }
    }
}
