//! Out-of-core paged execution under a buffer-pool budget smaller than the
//! data.
//!
//! A zipfian relation (10M+ rows at the default scale) is spilled to a
//! file-backed segment store and a chunked, lineage-capturing group-by runs
//! over it through a buffer pool whose budget is a fraction of the raw
//! column bytes. The experiment records, per replacement policy
//! (`clock`/`sieve`/`lru`): capture latency, pool hit rate, disk traffic,
//! and cold-vs-warm backward-trace latency. It then spills the captured CSR
//! lineage into delta/bit-packed blocks (compressed vs raw bytes) and asks
//! the planner to `EXPLAIN` a partition-pruned consuming query over the
//! paged base, recording estimated and actual pages per strategy — the
//! `BENCH_paged.json` evidence that `PartitionPruned` skips physical page
//! reads, not just rid comparisons.

use std::sync::Arc;

use smoke_core::ops::groupby::{GroupByOptions, GroupByResult};
use smoke_core::ops::join::JoinOptions;
use smoke_core::{paged_group_by, paged_hash_join, AggExpr, AggPushdown, Expr};
use smoke_datagen::zipf::{zipf_table_binned, ZipfSpec};
use smoke_lineage::{CompressedCsrIndex, LineageIndex};
use smoke_pager::{BufferPool, ReplacementPolicy, SegmentStore, PAGE_SIZE};
use smoke_planner::{IoModel, LineagePlanner, LineageQuery, RewriteInfo, Strategy};
use smoke_storage::{PagedRelation, Rid, DEFAULT_CHUNK_ROWS, ROWS_PER_PAGE};

use crate::{ms, time, time_avg, ExpRow, Scale};

/// Number of `v_bin` partitions the workload templates on.
pub const BINS: usize = 8;
/// Pool budget as a fraction of the raw paged-column bytes when no absolute
/// `--budget-bytes` cap is given: the working set can never fit, so every
/// policy must actually evict.
pub const BUDGET_FRACTION: f64 = 0.25;
/// Numeric (paged) columns of `zipf(id, z, v, v_bin)`.
const NUMERIC_COLS: usize = 4;
/// Prefetch worker threads for the prefetch-on legs. One, deliberately:
/// bench runners are often single-core, where a second worker only adds
/// context-switch churn between the workers and the gathering thread.
const PREFETCH_THREADS: usize = 1;
/// Random probes per policy leg at the default scale (before `--scale`).
const PROBE_BASE: usize = 60_000;
/// Rids per probe batch — small enough that a batch never approaches the
/// budget, large enough to amortize the gather call.
const PROBE_BATCH: usize = 512;

/// The `paged` experiment: out-of-core capture and tracing under a page
/// budget, per replacement policy, plus compressed lineage and the
/// planner's I/O-aware strategy comparison.
pub fn paged(scale: &Scale) -> Vec<ExpRow> {
    let mut rows = Vec::new();
    let n = scale.size(10_000_000, 20_000);
    let groups = 1_000usize;
    let table = zipf_table_binned(
        &ZipfSpec {
            theta: 1.0,
            rows: n,
            groups,
            seed: 33,
        },
        BINS,
    );
    let raw_bytes = (n * NUMERIC_COLS * 8) as f64;
    // `--budget-bytes` models a fixed machine (the 100M nightly leg); the
    // default fraction tracks the dataset so the pool always undercuts it.
    let (budget_pages, config) = match scale.budget_bytes {
        Some(bytes) => (
            (bytes / PAGE_SIZE).max(1),
            format!("n={n},g={groups},bins={BINS},budget_bytes={bytes}"),
        ),
        None => (
            (((raw_bytes * BUDGET_FRACTION) as usize) / PAGE_SIZE).max(1),
            format!(
                "n={n},g={groups},bins={BINS},budget_pct={:.0}",
                BUDGET_FRACTION * 100.0
            ),
        ),
    };
    rows.push(ExpRow::new(
        "paged",
        &config,
        "layout",
        "raw_bytes",
        raw_bytes,
    ));
    rows.push(ExpRow::new(
        "paged",
        &config,
        "layout",
        "budget_bytes",
        (budget_pages * PAGE_SIZE) as f64,
    ));

    let keys = ["z".to_string()];
    let aggs = [AggExpr::count("cnt")];
    let mut opts = GroupByOptions::inject();
    opts.workload.skipping_partition_by = vec!["v_bin".to_string()];
    opts.workload.agg_pushdown = Some(AggPushdown {
        partition_by: vec!["v_bin".to_string()],
        aggs: vec![AggExpr::count("cnt"), AggExpr::sum("v", "total")],
    });

    // One full capture + trace cycle per replacement policy, each over its
    // own file-backed store so policies never share residency.
    let mut kept: Option<(PagedRelation, GroupByResult)> = None;
    for policy in ReplacementPolicy::ALL {
        let store = SegmentStore::temp("bench-paged").expect("temp segment store");
        let pool = Arc::new(BufferPool::new(store, budget_pages, policy));
        let paged = PagedRelation::spill(&table, &pool).expect("spill");
        pool.reset_stats(); // spill writes bypass the pool

        let (captured, capture_time) = time(|| {
            paged_group_by(&paged, &keys, &aggs, &opts, DEFAULT_CHUNK_ROWS).expect("capture")
        });
        let technique = policy.as_str();
        rows.push(ExpRow::new(
            "paged",
            &config,
            technique,
            "capture_ms",
            ms(capture_time),
        ));

        // Backward-trace the least popular group: its pages fit the budget,
        // so the second run measures a genuinely warm pool while the first
        // pays the post-capture misses.
        let trace_rids = trace_of_smallest_group(&captured);
        let (_, cold) = time(|| paged.gather(&trace_rids, "trace").expect("gather"));
        rows.push(ExpRow::new(
            "paged",
            &config,
            technique,
            "trace_cold_ms",
            ms(cold),
        ));
        let warm = time_avg(scale.runs, scale.warmup, || {
            paged.gather(&trace_rids, "trace").expect("gather")
        });
        rows.push(ExpRow::new(
            "paged",
            &config,
            technique,
            "trace_warm_ms",
            ms(warm),
        ));

        let stats = pool.stats();
        rows.push(ExpRow::new(
            "paged",
            &config,
            technique,
            "hit_rate",
            stats.hit_rate(),
        ));
        for (metric, value) in [
            ("disk_reads", stats.disk_reads as f64),
            ("disk_writes", stats.disk_writes as f64),
            ("evictions", stats.evictions as f64),
        ] {
            rows.push(ExpRow::new("paged", &config, technique, metric, value));
        }

        // Random-probe phase: the sequential capture scan ties every policy
        // (each page is touched once, in order), so probe a skewed random
        // rid stream — re-reference behavior under eviction pressure is
        // where clock/sieve/lru actually differ. `resident_fraction` after
        // the probes shows what each policy chose to keep.
        pool.reset_stats();
        let probes = probe_batches(n, scale.size(PROBE_BASE, 4_000));
        let (_, probe_time) = time(|| {
            for batch in &probes {
                paged.gather(batch, "probe").expect("probe gather");
            }
        });
        let probe_stats = pool.stats();
        for (metric, value) in [
            ("probe_ms", ms(probe_time)),
            ("probe_hit_rate", probe_stats.hit_rate()),
            ("probe_disk_reads", probe_stats.disk_reads as f64),
            ("resident_fraction", paged.resident_fraction()),
        ] {
            rows.push(ExpRow::new("paged", &config, technique, metric, value));
        }
        kept = Some((paged, captured));
    }
    let (paged, captured) = kept.expect("at least one policy ran");

    // Cold backward trace of the *hottest* group, with and without the
    // background prefetcher, over identical fresh stores. The zipf head's
    // rows land on nearly every page of the relation, so the rid-sorted
    // gather walks each column's page run almost sequentially — the shape
    // the prefetcher coalesces into vectored `read_run_pages` reads whose
    // buffers swap straight into frames, paying one eviction sweep and one
    // byte copy per run where the demand path pays one sweep per page miss.
    // The trace runs in batches whose page footprint fits the pool (so a
    // hinted batch never evicts itself), and the hint + wait sit inside
    // the timed region: end-to-end cold-trace latency, not a warmed rerun.
    // Both legs execute the exact same batched gathers.
    let hot_rids = trace_of(&captured, hottest_group(&captured));
    for use_prefetch in [false, true] {
        let technique = if use_prefetch {
            "Prefetch"
        } else {
            "NoPrefetch"
        };
        let store = SegmentStore::temp("bench-paged-pf").expect("temp segment store");
        let pool = if use_prefetch {
            Arc::new(BufferPool::with_prefetch(
                store,
                budget_pages,
                ReplacementPolicy::Sieve,
                PREFETCH_THREADS,
            ))
        } else {
            Arc::new(BufferPool::new(
                store,
                budget_pages,
                ReplacementPolicy::Sieve,
            ))
        };
        let fresh = PagedRelation::spill(&table, &pool).expect("spill");
        pool.reset_stats();
        let batches = budgeted_batches(&hot_rids, budget_pages);
        let (_, cold) = time(|| {
            for batch in &batches {
                if use_prefetch {
                    fresh.prefetch_rids(batch);
                    pool.prefetch_quiesce();
                }
                fresh.gather(batch, "trace").expect("gather");
            }
        });
        rows.push(ExpRow::new(
            "paged",
            &config,
            technique,
            "trace_cold_ms",
            ms(cold),
        ));
        let stats = pool.stats();
        rows.push(ExpRow::new(
            "paged",
            &config,
            technique,
            "trace_disk_reads",
            stats.disk_reads as f64,
        ));
        if use_prefetch {
            for (metric, value) in [
                ("prefetch_hits", stats.prefetch_hits as f64),
                ("prefetch_wasted", stats.prefetch_wasted as f64),
            ] {
                rows.push(ExpRow::new("paged", &config, technique, metric, value));
            }
        }
    }

    // Grace-hash spilling join: a self-join on the unique `id` key whose
    // build side (48 bytes/row of hash-table state) exceeds the pool budget,
    // so `paged_hash_join` hash-partitions both sides to disk and joins
    // partition pairs resident-at-a-time. `grace_partitions > 1` is the
    // evidence that the build side actually spilled.
    let join_keys = ["id".to_string()];
    let (join, join_time) = time(|| {
        paged_hash_join(
            &paged,
            &paged,
            &join_keys,
            &join_keys,
            &JoinOptions::inject(),
            DEFAULT_CHUNK_ROWS,
        )
        .expect("grace join")
    });
    for (metric, value) in [
        ("join_ms", ms(join_time)),
        ("grace_partitions", join.grace_partitions as f64),
        ("join_output_rows", join.output_rows as f64),
    ] {
        rows.push(ExpRow::new("paged", &config, "GraceJoin", metric, value));
    }
    drop(join);

    // Compressed out-of-core CSR lineage: delta + bit-packed rid blocks vs
    // the raw 4-bytes-per-edge buffer.
    let backward = captured
        .lineage
        .input(0)
        .backward
        .as_ref()
        .expect("inject capture keeps the backward index")
        .finalized();
    let LineageIndex::Csr(csr) = &backward else {
        unreachable!("finalized() always yields CSR for 1-to-N indexes");
    };
    let compressed = CompressedCsrIndex::spill(csr, paged.pool()).expect("spill lineage");
    rows.push(ExpRow::new(
        "paged",
        &config,
        "RawCsr",
        "lineage_bytes",
        compressed.raw_bytes() as f64,
    ));
    rows.push(ExpRow::new(
        "paged",
        &config,
        "CompressedCsr",
        "lineage_bytes",
        compressed.compressed_bytes() as f64,
    ));
    rows.push(ExpRow::new(
        "paged",
        &config,
        "CompressedCsr",
        "compression_ratio",
        compressed.compressed_bytes() as f64 / compressed.raw_bytes().max(1) as f64,
    ));

    // Planner EXPLAIN over the paged base: the partition-pruned consuming
    // query must be estimated to touch strictly fewer pages than the eager
    // trace, and the actual distinct pages behind each rid set agree.
    let planner = LineagePlanner::new(&table, &captured.output)
        .lineage(captured.lineage.input(0))
        .artifacts(&captured.artifacts)
        .rewrite(RewriteInfo::new(vec!["z".to_string()], None))
        .stats(captured.stats)
        .with_io(IoModel::from_paged(&paged));
    let target = smallest_group(&captured);
    let query = LineageQuery::backward()
        .rids([target])
        .filter(Expr::col("v_bin").eq(Expr::lit(3)))
        .aggregate(&["v_bin"], vec![AggExpr::count("cnt")]);
    let explain = planner.explain(&query).expect("plannable");
    for strategy in [Strategy::EagerTrace, Strategy::PartitionPruned] {
        if let Some(pages) = explain.candidate_pages(strategy) {
            rows.push(ExpRow::new(
                "paged",
                &config,
                strategy.to_string(),
                "est_pages",
                pages,
            ));
        }
    }
    rows.push(ExpRow::new(
        "paged",
        &config,
        explain.strategy.to_string(),
        "chosen",
        1.0,
    ));
    // Ground truth: distinct pages per column behind the full trace vs the
    // pruned partition.
    let eager_rids = trace_of(&captured, target);
    let pruned_rids: Vec<Rid> = captured
        .artifacts
        .partitioned
        .as_ref()
        .map(|part| part.partition(target as usize, "3").to_vec())
        .unwrap_or_default();
    rows.push(ExpRow::new(
        "paged",
        &config,
        "EagerTrace",
        "pages_touched",
        paged.pages_touched(&eager_rids) as f64,
    ));
    rows.push(ExpRow::new(
        "paged",
        &config,
        "PartitionPruned",
        "pages_touched",
        paged.pages_touched(&pruned_rids) as f64,
    ));
    rows
}

/// Deterministic skewed probe stream: `probes` rids in [0, n), batched for
/// gathering. An LCG drives a squared-uniform draw so low rids (the "hot"
/// region) are probed far more often than the tail — a re-reference pattern
/// the replacement policies can actually disagree on, unlike a sequential
/// scan.
fn probe_batches(n: usize, probes: usize) -> Vec<Vec<Rid>> {
    let mut state = 0x9e37_79b9_7f4a_7c15u64;
    let mut batches = Vec::with_capacity(probes.div_ceil(PROBE_BATCH));
    let mut batch = Vec::with_capacity(PROBE_BATCH);
    for _ in 0..probes {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let u = (state >> 11) as f64 / (1u64 << 53) as f64;
        let rid = ((u * u * n as f64) as usize).min(n.saturating_sub(1));
        batch.push(rid as Rid);
        if batch.len() == PROBE_BATCH {
            batches.push(std::mem::take(&mut batch));
        }
    }
    if !batch.is_empty() {
        batches.push(batch);
    }
    batches
}

/// Splits an ascending rid trace into batches whose page footprint across
/// all paged columns stays under half the pool budget (and under the
/// prefetcher's hint cap), so a hinted batch lands in the pool instead of
/// evicting itself before the gather reaches it.
fn budgeted_batches(rids: &[Rid], budget_pages: usize) -> Vec<&[Rid]> {
    let page_cap = (budget_pages / 2).clamp(1, 16_384);
    let span_rows = (page_cap / NUMERIC_COLS).max(1) * ROWS_PER_PAGE;
    let mut batches = Vec::new();
    let mut start = 0usize;
    for (i, &rid) in rids.iter().enumerate() {
        if rid as usize >= rids[start] as usize + span_rows {
            batches.push(&rids[start..i]);
            start = i;
        }
    }
    if start < rids.len() {
        batches.push(&rids[start..]);
    }
    batches
}

/// The output gid with the largest group count — the zipf head, whose
/// backward trace touches nearly every page of the base relation.
fn hottest_group(captured: &GroupByResult) -> Rid {
    captured
        .output
        .column_by_name("cnt")
        .expect("count aggregate")
        .as_int()
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(g, _)| g as Rid)
        .unwrap_or(0)
}

/// The output gid with the smallest positive group count.
fn smallest_group(captured: &GroupByResult) -> Rid {
    captured
        .output
        .column_by_name("cnt")
        .expect("count aggregate")
        .as_int()
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .min_by_key(|(_, &c)| c)
        .map(|(g, _)| g as Rid)
        .unwrap_or(0)
}

fn trace_of(captured: &GroupByResult, gid: Rid) -> Vec<Rid> {
    captured
        .lineage
        .input(0)
        .backward
        .as_ref()
        .expect("inject capture keeps the backward index")
        .lookup(gid)
}

fn trace_of_smallest_group(captured: &GroupByResult) -> Vec<Rid> {
    trace_of(captured, smallest_group(captured))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paged_rows_cover_policies_lineage_and_planner() {
        let rows = paged(&Scale::tiny());
        // Every replacement policy reports capture + trace + pool counters.
        for policy in ReplacementPolicy::ALL {
            for metric in [
                "capture_ms",
                "trace_cold_ms",
                "trace_warm_ms",
                "hit_rate",
                "disk_reads",
                "probe_ms",
                "probe_hit_rate",
                "probe_disk_reads",
                "resident_fraction",
            ] {
                assert!(
                    rows.iter()
                        .any(|r| r.technique == policy.as_str() && r.metric == metric),
                    "missing {metric} for {policy}"
                );
            }
        }
        let value = |technique: &str, metric: &str| {
            rows.iter()
                .find(|r| r.technique == technique && r.metric == metric)
                .map(|r| r.value)
                .unwrap_or_else(|| panic!("missing {technique}/{metric}"))
        };
        // The pool budget genuinely undercuts the raw data.
        assert!(value("layout", "budget_bytes") <= 0.5 * value("layout", "raw_bytes"));
        // Compressed lineage beats raw by at least 2x on the zipfian capture.
        assert!(
            value("CompressedCsr", "lineage_bytes") * 2.0 <= value("RawCsr", "lineage_bytes"),
            "compression must reach 0.5x raw"
        );
        // The planner's I/O estimates make pruning strictly cheaper in pages,
        // and the physical page counts agree.
        assert!(
            value("PartitionPruned", "est_pages") < value("EagerTrace", "est_pages"),
            "pruned {} vs eager {}",
            value("PartitionPruned", "est_pages"),
            value("EagerTrace", "est_pages"),
        );
        assert!(value("PartitionPruned", "pages_touched") <= value("EagerTrace", "pages_touched"));
        // The probe phase keeps at most the budget resident.
        for policy in ReplacementPolicy::ALL {
            let frac = value(policy.as_str(), "resident_fraction");
            assert!((0.0..=1.0).contains(&frac), "{policy}: {frac}");
        }
        // Both cold-trace legs report, and the prefetch leg proves the
        // run-ahead landed (hits > 0). The ≤0.5x latency criterion is
        // asserted on the full-scale BENCH artifact, not the tiny CI run
        // where both legs sit at the timer floor.
        assert!(value("NoPrefetch", "trace_cold_ms").is_finite());
        assert!(value("Prefetch", "trace_cold_ms").is_finite());
        assert!(value("Prefetch", "prefetch_hits") > 0.0);
        // Both legs read the same cold pages; the prefetch leg just reads
        // them in coalesced runs. Allow slack for bridged gap pages.
        assert!(value("NoPrefetch", "trace_disk_reads") > 0.0);
        assert!(
            value("Prefetch", "trace_disk_reads") <= 2.0 * value("NoPrefetch", "trace_disk_reads"),
            "prefetch reads {} vs demand {}",
            value("Prefetch", "trace_disk_reads"),
            value("NoPrefetch", "trace_disk_reads"),
        );
        // The self-join build side exceeds 25% of the raw bytes at every
        // scale, so the grace path must engage.
        assert!(
            value("GraceJoin", "grace_partitions") > 1.0,
            "grace join must spill: {} partitions",
            value("GraceJoin", "grace_partitions")
        );
        assert!(rows.iter().all(|r| r.value.is_finite()));
    }

    #[test]
    fn budgeted_batches_bound_the_page_footprint_and_lose_nothing() {
        // Ascending rids with a stride of ~7 rows, like a zipf-head trace.
        let rids: Vec<Rid> = (0..30_000u32).map(|i| i * 7).collect();
        let budget_pages = 64;
        let batches = budgeted_batches(&rids, budget_pages);
        assert!(batches.len() > 1, "must actually split");
        let total: usize = batches.iter().map(|b| b.len()).sum();
        assert_eq!(total, rids.len(), "no rid dropped or duplicated");
        let span_rows = (budget_pages / 2 / NUMERIC_COLS) * ROWS_PER_PAGE;
        for batch in &batches {
            let (first, last) = (batch[0] as usize, batch[batch.len() - 1] as usize);
            assert!(
                last - first < span_rows,
                "batch spans {} rows",
                last - first
            );
        }
        // A tiny budget still yields whole batches.
        let tiny = budgeted_batches(&rids, 1);
        assert_eq!(tiny.iter().map(|b| b.len()).sum::<usize>(), rids.len());
    }

    #[test]
    fn probe_batches_are_deterministic_and_in_range() {
        let a = probe_batches(10_000, 2_000);
        let b = probe_batches(10_000, 2_000);
        assert_eq!(a, b, "probe stream must be reproducible across runs");
        assert_eq!(a.iter().map(Vec::len).sum::<usize>(), 2_000);
        assert!(a.iter().flatten().all(|&r| (r as usize) < 10_000));
        // Skew: the hot half of the rid space absorbs well over half the
        // probes (squared-uniform puts ~70% below n/2).
        let hot = a
            .iter()
            .flatten()
            .filter(|&&r| (r as usize) < 5_000)
            .count();
        assert!(hot * 10 > 2_000 * 6, "skew too weak: {hot}/2000");
    }
}
