//! Out-of-core paged execution under a buffer-pool budget smaller than the
//! data.
//!
//! A zipfian relation (10M+ rows at the default scale) is spilled to a
//! file-backed segment store and a chunked, lineage-capturing group-by runs
//! over it through a buffer pool whose budget is a fraction of the raw
//! column bytes. The experiment records, per replacement policy
//! (`clock`/`sieve`/`lru`): capture latency, pool hit rate, disk traffic,
//! and cold-vs-warm backward-trace latency. It then spills the captured CSR
//! lineage into delta/bit-packed blocks (compressed vs raw bytes) and asks
//! the planner to `EXPLAIN` a partition-pruned consuming query over the
//! paged base, recording estimated and actual pages per strategy — the
//! `BENCH_paged.json` evidence that `PartitionPruned` skips physical page
//! reads, not just rid comparisons.

use std::sync::Arc;

use smoke_core::ops::groupby::{GroupByOptions, GroupByResult};
use smoke_core::{paged_group_by, AggExpr, AggPushdown, Expr};
use smoke_datagen::zipf::{zipf_table_binned, ZipfSpec};
use smoke_lineage::{CompressedCsrIndex, LineageIndex};
use smoke_pager::{BufferPool, ReplacementPolicy, SegmentStore, PAGE_SIZE};
use smoke_planner::{IoModel, LineagePlanner, LineageQuery, RewriteInfo, Strategy};
use smoke_storage::{PagedRelation, Rid, DEFAULT_CHUNK_ROWS};

use crate::{ms, time, time_avg, ExpRow, Scale};

/// Number of `v_bin` partitions the workload templates on.
pub const BINS: usize = 8;
/// Pool budget as a fraction of the raw paged-column bytes: the working set
/// can never fit, so every policy must actually evict.
pub const BUDGET_FRACTION: f64 = 0.25;
/// Numeric (paged) columns of `zipf(id, z, v, v_bin)`.
const NUMERIC_COLS: usize = 4;

/// The `paged` experiment: out-of-core capture and tracing under a page
/// budget, per replacement policy, plus compressed lineage and the
/// planner's I/O-aware strategy comparison.
pub fn paged(scale: &Scale) -> Vec<ExpRow> {
    let mut rows = Vec::new();
    let n = scale.size(10_000_000, 20_000);
    let groups = 1_000usize;
    let table = zipf_table_binned(
        &ZipfSpec {
            theta: 1.0,
            rows: n,
            groups,
            seed: 33,
        },
        BINS,
    );
    let raw_bytes = (n * NUMERIC_COLS * 8) as f64;
    let budget_pages = (((raw_bytes * BUDGET_FRACTION) as usize) / PAGE_SIZE).max(1);
    let config = format!(
        "n={n},g={groups},bins={BINS},budget_pct={:.0}",
        BUDGET_FRACTION * 100.0
    );
    rows.push(ExpRow::new(
        "paged",
        &config,
        "layout",
        "raw_bytes",
        raw_bytes,
    ));
    rows.push(ExpRow::new(
        "paged",
        &config,
        "layout",
        "budget_bytes",
        (budget_pages * PAGE_SIZE) as f64,
    ));

    let keys = ["z".to_string()];
    let aggs = [AggExpr::count("cnt")];
    let mut opts = GroupByOptions::inject();
    opts.workload.skipping_partition_by = vec!["v_bin".to_string()];
    opts.workload.agg_pushdown = Some(AggPushdown {
        partition_by: vec!["v_bin".to_string()],
        aggs: vec![AggExpr::count("cnt"), AggExpr::sum("v", "total")],
    });

    // One full capture + trace cycle per replacement policy, each over its
    // own file-backed store so policies never share residency.
    let mut kept: Option<(PagedRelation, GroupByResult)> = None;
    for policy in ReplacementPolicy::ALL {
        let store = SegmentStore::temp("bench-paged").expect("temp segment store");
        let pool = Arc::new(BufferPool::new(store, budget_pages, policy));
        let paged = PagedRelation::spill(&table, &pool).expect("spill");
        pool.reset_stats(); // spill writes bypass the pool

        let (captured, capture_time) = time(|| {
            paged_group_by(&paged, &keys, &aggs, &opts, DEFAULT_CHUNK_ROWS).expect("capture")
        });
        let technique = policy.as_str();
        rows.push(ExpRow::new(
            "paged",
            &config,
            technique,
            "capture_ms",
            ms(capture_time),
        ));

        // Backward-trace the least popular group: its pages fit the budget,
        // so the second run measures a genuinely warm pool while the first
        // pays the post-capture misses.
        let trace_rids = trace_of_smallest_group(&captured);
        let (_, cold) = time(|| paged.gather(&trace_rids, "trace").expect("gather"));
        rows.push(ExpRow::new(
            "paged",
            &config,
            technique,
            "trace_cold_ms",
            ms(cold),
        ));
        let warm = time_avg(scale.runs, scale.warmup, || {
            paged.gather(&trace_rids, "trace").expect("gather")
        });
        rows.push(ExpRow::new(
            "paged",
            &config,
            technique,
            "trace_warm_ms",
            ms(warm),
        ));

        let stats = pool.stats();
        rows.push(ExpRow::new(
            "paged",
            &config,
            technique,
            "hit_rate",
            stats.hit_rate(),
        ));
        for (metric, value) in [
            ("disk_reads", stats.disk_reads as f64),
            ("disk_writes", stats.disk_writes as f64),
            ("evictions", stats.evictions as f64),
        ] {
            rows.push(ExpRow::new("paged", &config, technique, metric, value));
        }
        kept = Some((paged, captured));
    }
    let (paged, captured) = kept.expect("at least one policy ran");

    // Compressed out-of-core CSR lineage: delta + bit-packed rid blocks vs
    // the raw 4-bytes-per-edge buffer.
    let backward = captured
        .lineage
        .input(0)
        .backward
        .as_ref()
        .expect("inject capture keeps the backward index")
        .finalized();
    let LineageIndex::Csr(csr) = &backward else {
        unreachable!("finalized() always yields CSR for 1-to-N indexes");
    };
    let compressed = CompressedCsrIndex::spill(csr, paged.pool()).expect("spill lineage");
    rows.push(ExpRow::new(
        "paged",
        &config,
        "RawCsr",
        "lineage_bytes",
        compressed.raw_bytes() as f64,
    ));
    rows.push(ExpRow::new(
        "paged",
        &config,
        "CompressedCsr",
        "lineage_bytes",
        compressed.compressed_bytes() as f64,
    ));
    rows.push(ExpRow::new(
        "paged",
        &config,
        "CompressedCsr",
        "compression_ratio",
        compressed.compressed_bytes() as f64 / compressed.raw_bytes().max(1) as f64,
    ));

    // Planner EXPLAIN over the paged base: the partition-pruned consuming
    // query must be estimated to touch strictly fewer pages than the eager
    // trace, and the actual distinct pages behind each rid set agree.
    let planner = LineagePlanner::new(&table, &captured.output)
        .lineage(captured.lineage.input(0))
        .artifacts(&captured.artifacts)
        .rewrite(RewriteInfo::new(vec!["z".to_string()], None))
        .stats(captured.stats)
        .with_io(IoModel::from_paged(&paged));
    let target = smallest_group(&captured);
    let query = LineageQuery::backward()
        .rids([target])
        .filter(Expr::col("v_bin").eq(Expr::lit(3)))
        .aggregate(&["v_bin"], vec![AggExpr::count("cnt")]);
    let explain = planner.explain(&query).expect("plannable");
    for strategy in [Strategy::EagerTrace, Strategy::PartitionPruned] {
        if let Some(pages) = explain.candidate_pages(strategy) {
            rows.push(ExpRow::new(
                "paged",
                &config,
                strategy.to_string(),
                "est_pages",
                pages,
            ));
        }
    }
    rows.push(ExpRow::new(
        "paged",
        &config,
        explain.strategy.to_string(),
        "chosen",
        1.0,
    ));
    // Ground truth: distinct pages per column behind the full trace vs the
    // pruned partition.
    let eager_rids = trace_of(&captured, target);
    let pruned_rids: Vec<Rid> = captured
        .artifacts
        .partitioned
        .as_ref()
        .map(|part| part.partition(target as usize, "3").to_vec())
        .unwrap_or_default();
    rows.push(ExpRow::new(
        "paged",
        &config,
        "EagerTrace",
        "pages_touched",
        paged.pages_touched(&eager_rids) as f64,
    ));
    rows.push(ExpRow::new(
        "paged",
        &config,
        "PartitionPruned",
        "pages_touched",
        paged.pages_touched(&pruned_rids) as f64,
    ));
    rows
}

/// The output gid with the smallest positive group count.
fn smallest_group(captured: &GroupByResult) -> Rid {
    captured
        .output
        .column_by_name("cnt")
        .expect("count aggregate")
        .as_int()
        .iter()
        .enumerate()
        .filter(|(_, &c)| c > 0)
        .min_by_key(|(_, &c)| c)
        .map(|(g, _)| g as Rid)
        .unwrap_or(0)
}

fn trace_of(captured: &GroupByResult, gid: Rid) -> Vec<Rid> {
    captured
        .lineage
        .input(0)
        .backward
        .as_ref()
        .expect("inject capture keeps the backward index")
        .lookup(gid)
}

fn trace_of_smallest_group(captured: &GroupByResult) -> Vec<Rid> {
    trace_of(captured, smallest_group(captured))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paged_rows_cover_policies_lineage_and_planner() {
        let rows = paged(&Scale::tiny());
        // Every replacement policy reports capture + trace + pool counters.
        for policy in ReplacementPolicy::ALL {
            for metric in [
                "capture_ms",
                "trace_cold_ms",
                "trace_warm_ms",
                "hit_rate",
                "disk_reads",
            ] {
                assert!(
                    rows.iter()
                        .any(|r| r.technique == policy.as_str() && r.metric == metric),
                    "missing {metric} for {policy}"
                );
            }
        }
        let value = |technique: &str, metric: &str| {
            rows.iter()
                .find(|r| r.technique == technique && r.metric == metric)
                .map(|r| r.value)
                .unwrap_or_else(|| panic!("missing {technique}/{metric}"))
        };
        // The pool budget genuinely undercuts the raw data.
        assert!(value("layout", "budget_bytes") <= 0.5 * value("layout", "raw_bytes"));
        // Compressed lineage beats raw by at least 2x on the zipfian capture.
        assert!(
            value("CompressedCsr", "lineage_bytes") * 2.0 <= value("RawCsr", "lineage_bytes"),
            "compression must reach 0.5x raw"
        );
        // The planner's I/O estimates make pruning strictly cheaper in pages,
        // and the physical page counts agree.
        assert!(
            value("PartitionPruned", "est_pages") < value("EagerTrace", "est_pages"),
            "pruned {} vs eager {}",
            value("PartitionPruned", "est_pages"),
            value("EagerTrace", "est_pages"),
        );
        assert!(value("PartitionPruned", "pages_touched") <= value("EagerTrace", "pages_touched"));
        assert!(rows.iter().all(|r| r.value.is_finite()));
    }
}
