//! # smoke-bench
//!
//! Benchmark harness reproducing every table and figure of the Smoke
//! evaluation (§6 and Appendix G). Each experiment is a plain function that
//! returns rows of `(experiment, configuration, technique, metric, value)`;
//! the `experiments` binary prints them, and the criterion benches under
//! `benches/` wrap the same workloads for statistically rigorous timing.
//!
//! Dataset sizes default to laptop-scale so the full suite completes in
//! minutes; the binary accepts a `--scale` multiplier to approach the paper's
//! sizes.

#![warn(missing_docs)]

pub mod apps_exp;
pub mod micro;
pub mod paged_exp;
pub mod parallel_exp;
pub mod planner_exp;
pub mod query_exp;
pub mod server_exp;
pub mod tpch_exp;
pub mod vectorized_exp;

use std::time::{Duration, Instant};

/// One reported measurement.
#[derive(Debug, Clone, PartialEq)]
pub struct ExpRow {
    /// Experiment id (e.g. "fig5").
    pub experiment: String,
    /// Workload configuration (e.g. "n=100000,g=100").
    pub config: String,
    /// Technique name (e.g. "Smoke-I").
    pub technique: String,
    /// Metric name (e.g. "capture_ms", "overhead_x").
    pub metric: String,
    /// Metric value.
    pub value: f64,
}

impl ExpRow {
    /// Creates a row.
    pub fn new(
        experiment: &str,
        config: impl Into<String>,
        technique: impl Into<String>,
        metric: &str,
        value: f64,
    ) -> Self {
        ExpRow {
            experiment: experiment.to_string(),
            config: config.into(),
            technique: technique.into(),
            metric: metric.to_string(),
            value,
        }
    }
}

/// Times a closure, returning its result and the elapsed wall-clock time.
pub fn time<T>(mut f: impl FnMut() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Times a closure over `runs` executions and returns the mean duration of
/// the last `runs - warmup` runs (the paper averages 15 runs after 3
/// warm-ups; the harness default is smaller to keep the suite fast).
pub fn time_avg<T>(runs: usize, warmup: usize, mut f: impl FnMut() -> T) -> Duration {
    let runs = runs.max(1);
    // Clamp so at least one run is always counted (e.g. `--runs 1`).
    let warmup = warmup.min(runs - 1);
    let mut total = Duration::ZERO;
    let mut counted = 0u32;
    for i in 0..runs {
        let (_, d) = time(&mut f);
        if i >= warmup {
            total += d;
            counted += 1;
        }
    }
    total / counted
}

/// Rows surfacing a [`smoke_lineage::CaptureStats`] record (rid resizes,
/// edges written, lineage bytes) so BENCH artifacts record capture overhead
/// alongside latency, per the paper's overhead breakdowns.
pub fn capture_stat_rows(
    experiment: &str,
    config: &str,
    technique: &str,
    stats: &smoke_lineage::CaptureStats,
) -> Vec<ExpRow> {
    vec![
        ExpRow::new(
            experiment,
            config,
            technique,
            "rid_resizes",
            stats.rid_resizes as f64,
        ),
        ExpRow::new(experiment, config, technique, "edges", stats.edges as f64),
        ExpRow::new(
            experiment,
            config,
            technique,
            "lineage_bytes",
            stats.lineage_bytes as f64,
        ),
    ]
}

/// Relative overhead of `instrumented` versus `baseline` (e.g. `0.7` means
/// 1.7× the baseline latency).
pub fn overhead(instrumented: Duration, baseline: Duration) -> f64 {
    if baseline.is_zero() {
        return f64::INFINITY;
    }
    (instrumented.as_secs_f64() - baseline.as_secs_f64()) / baseline.as_secs_f64()
}

/// Duration in fractional milliseconds.
pub fn ms(d: Duration) -> f64 {
    d.as_secs_f64() * 1e3
}

/// Renders rows as a JSON array, for machine-readable artifacts such as the
/// CI `BENCH_csr.json` perf snapshot. No external serializer: fields are
/// plain strings (escaped) and finite floats (`null` otherwise).
pub fn render_json(rows: &[ExpRow]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len());
        for c in s.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::from("[");
    for (i, row) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let value = if row.value.is_finite() {
            row.value.to_string()
        } else {
            "null".to_string()
        };
        out.push_str(&format!(
            "\n  {{\"experiment\":\"{}\",\"config\":\"{}\",\"technique\":\"{}\",\"metric\":\"{}\",\"value\":{}}}",
            esc(&row.experiment),
            esc(&row.config),
            esc(&row.technique),
            esc(&row.metric),
            value,
        ));
    }
    out.push_str("\n]\n");
    out
}

/// Renders rows as an aligned text table.
pub fn render_table(rows: &[ExpRow]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<8} {:<34} {:<22} {:<16} {:>12}\n",
        "exp", "config", "technique", "metric", "value"
    ));
    out.push_str(&"-".repeat(96));
    out.push('\n');
    for row in rows {
        out.push_str(&format!(
            "{:<8} {:<34} {:<22} {:<16} {:>12.3}\n",
            row.experiment, row.config, row.technique, row.metric, row.value
        ));
    }
    out
}

/// Scaling knobs shared by all experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Multiplier applied to every default dataset size.
    pub factor: f64,
    /// Timed runs per measurement.
    pub runs: usize,
    /// Warm-up runs excluded from the mean.
    pub warmup: usize,
    /// Absolute buffer-pool budget in bytes for the out-of-core experiments
    /// (`--budget-bytes`). `None` sizes the pool as a fraction of the data
    /// instead ([`paged_exp::BUDGET_FRACTION`]) — the fraction tracks the
    /// dataset as `--scale` grows, while an absolute cap models a fixed
    /// machine, which is what the 100M-row nightly leg exercises.
    pub budget_bytes: Option<usize>,
}

impl Default for Scale {
    fn default() -> Self {
        Scale {
            factor: 1.0,
            runs: 3,
            warmup: 1,
            budget_bytes: None,
        }
    }
}

impl Scale {
    /// A scale suitable for unit tests and CI smoke runs.
    pub fn tiny() -> Self {
        Scale {
            factor: 0.05,
            runs: 1,
            warmup: 0,
            budget_bytes: None,
        }
    }

    /// Scales a default size by the factor (never below `min`).
    pub fn size(&self, base: usize, min: usize) -> usize {
        ((base as f64 * self.factor) as usize).max(min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_is_relative() {
        assert!(
            (overhead(Duration::from_millis(170), Duration::from_millis(100)) - 0.7).abs() < 1e-9
        );
        assert!(overhead(Duration::from_millis(1), Duration::ZERO).is_infinite());
    }

    #[test]
    fn time_avg_excludes_warmup() {
        let d = time_avg(3, 1, || std::thread::sleep(Duration::from_millis(1)));
        assert!(d >= Duration::from_millis(1));
    }

    #[test]
    fn table_rendering_contains_all_rows() {
        let rows = vec![
            ExpRow::new("fig5", "n=10", "Smoke-I", "capture_ms", 1.5),
            ExpRow::new("fig5", "n=10", "Baseline", "capture_ms", 1.0),
        ];
        let table = render_table(&rows);
        assert!(table.contains("Smoke-I"));
        assert!(table.contains("Baseline"));
        assert_eq!(table.lines().count(), 4);
    }

    #[test]
    fn json_rendering_is_well_formed() {
        let rows = vec![
            ExpRow::new("csr", "n=10000,g=100", "CSR", "trace_ms", 1.25),
            ExpRow::new("csr", "n=10000,g=100", "VecOfVecs", "heap_bytes", 4096.0),
            ExpRow::new("x", "quote\"d", "back\\slash", "overhead_x", f64::INFINITY),
        ];
        let json = render_json(&rows);
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert!(json.contains("\"technique\":\"CSR\""));
        assert!(json.contains("\"value\":1.25"));
        assert!(json.contains("quote\\\"d"));
        assert!(json.contains("back\\\\slash"));
        assert!(json.contains("\"value\":null"));
        assert_eq!(json.matches("{\"experiment\"").count(), 3);
    }

    #[test]
    fn scale_respects_minimum() {
        let s = Scale {
            factor: 0.001,
            ..Default::default()
        };
        assert_eq!(s.size(1000, 50), 50);
        let s = Scale::default();
        assert_eq!(s.size(1000, 50), 1000);
    }
}
