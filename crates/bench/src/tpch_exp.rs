//! TPC-H capture and workload-aware optimization experiments: Figures 8, 10,
//! 11, 12, 22, and 23.

use smoke_core::baselines::logical::{run_logical, LogicalTechnique};
use smoke_core::lazy::{backward_predicate, lazy_consume};
use smoke_core::query::{consume_aggregate, consume_from_cube, consume_with_skipping};
use smoke_core::{
    AggExpr, AggPushdown, CaptureConfig, CaptureMode, DirectionFilter, Executor, Expr,
    WorkloadOptions,
};
use smoke_datagen::tpch::TpchSpec;
use smoke_datagen::tpch_queries::{
    drilldown_aggs, evaluation_queries, q1, q10, q1_shipdate_cutoff, q1b_partition_attrs, q3,
};
use smoke_storage::{Database, Rid, Value};

use crate::{ms, overhead, time_avg, ExpRow, Scale};

fn tpch_db(scale: &Scale) -> Database {
    TpchSpec {
        scale_factor: 0.003 * scale.factor,
        seed: 7,
    }
    .generate()
}

/// Figure 8: relative capture overhead of Smoke-I and Logic-Idx on TPC-H Q1,
/// Q3, Q10, Q12.
pub fn fig8(scale: &Scale) -> Vec<ExpRow> {
    let db = tpch_db(scale);
    let mut rows = Vec::new();
    for (name, plan) in evaluation_queries() {
        let baseline = time_avg(scale.runs, scale.warmup, || {
            Executor::new(CaptureMode::Baseline)
                .execute(&plan, &db)
                .unwrap()
        });
        rows.push(ExpRow::new(
            "fig8",
            name,
            "Baseline",
            "latency_ms",
            ms(baseline),
        ));

        let inject = time_avg(scale.runs, scale.warmup, || {
            Executor::new(CaptureMode::Inject)
                .execute(&plan, &db)
                .unwrap()
        });
        rows.push(ExpRow::new(
            "fig8",
            name,
            "Smoke-I",
            "latency_ms",
            ms(inject),
        ));
        rows.push(ExpRow::new(
            "fig8",
            name,
            "Smoke-I",
            "overhead_pct",
            100.0 * overhead(inject, baseline),
        ));

        let logic = time_avg(scale.runs.min(2), 0, || {
            run_logical(&plan, &db, LogicalTechnique::LogicIdx).unwrap()
        });
        rows.push(ExpRow::new(
            "fig8",
            name,
            "Logic-Idx",
            "latency_ms",
            ms(logic),
        ));
        rows.push(ExpRow::new(
            "fig8",
            name,
            "Logic-Idx",
            "overhead_pct",
            100.0 * overhead(logic, baseline),
        ));
    }
    rows
}

/// Figure 10: Q1b lineage-consuming query latency (templated filters on
/// `l_shipmode` / `l_shipinstruct`) for Lazy, lineage indexes without data
/// skipping, and data skipping.
pub fn fig10(scale: &Scale) -> Vec<ExpRow> {
    let db = tpch_db(scale);
    let lineitem = db.relation("lineitem").unwrap();
    let mut rows = Vec::new();

    // Capture Q1 with and without the data-skipping partitioning.
    let plain = Executor::new(CaptureMode::Inject)
        .execute(&q1(), &db)
        .unwrap();
    let skipping_cfg = CaptureConfig::inject().with_workload(WorkloadOptions {
        skipping_partition_by: q1b_partition_attrs(),
        ..Default::default()
    });
    let skipping = Executor::with_config(skipping_cfg)
        .execute(&q1(), &db)
        .unwrap();
    let part_index = skipping
        .artifacts
        .partitioned
        .as_ref()
        .expect("skipping index");

    let q1_keys = vec!["l_returnflag".to_string(), "l_linestatus".to_string()];
    let q1a_keys = vec!["l_shipyear".to_string(), "l_shipmonth".to_string()];
    let aggs = drilldown_aggs();
    let base_sel = Expr::col("l_shipdate").lt(Expr::lit(q1_shipdate_cutoff()));

    // Sample the parameter space: the first few (shipmode, shipinstruct)
    // combinations per output bar.
    let modes = ["MAIL", "AIR", "SHIP", "TRUCK"];
    let instructs = ["NONE", "COLLECT COD"];
    for bar in 0..plain.relation.len() as Rid {
        let key_values = vec![
            plain.relation.value(bar as usize, 0),
            plain.relation.value(bar as usize, 1),
        ];
        let rewrite = backward_predicate(&q1_keys, &key_values, Some(&base_sel));
        for mode in modes {
            for instruct in instructs {
                let config = format!("bar={bar},mode={mode},instruct={instruct}");
                let extra = Expr::col("l_shipmode")
                    .eq(Expr::lit(mode))
                    .and(Expr::col("l_shipinstruct").eq(Expr::lit(instruct)));

                let lazy = time_avg(scale.runs, scale.warmup, || {
                    lazy_consume(lineitem, &rewrite, Some(&extra), &q1a_keys, &aggs).unwrap()
                });
                rows.push(ExpRow::new(
                    "fig10",
                    &config,
                    "Lazy",
                    "latency_ms",
                    ms(lazy),
                ));

                let rids = plain.lineage.backward(&[bar], "lineitem");
                let no_skip = time_avg(scale.runs, scale.warmup, || {
                    smoke_core::query::consume_filter_aggregate(
                        lineitem,
                        &rids,
                        Some(&extra),
                        &q1a_keys,
                        &aggs,
                    )
                    .unwrap()
                });
                rows.push(ExpRow::new(
                    "fig10",
                    &config,
                    "NoDataSkipping",
                    "latency_ms",
                    ms(no_skip),
                ));

                let parameter = format!("{mode}|{instruct}");
                let skip = time_avg(scale.runs, scale.warmup, || {
                    consume_with_skipping(lineitem, part_index, bar, &parameter, &q1a_keys, &aggs)
                        .unwrap()
                });
                rows.push(ExpRow::new(
                    "fig10",
                    &config,
                    "DataSkipping",
                    "latency_ms",
                    ms(skip),
                ));
            }
        }
    }
    rows
}

/// Figures 11 and 12: aggregation push-down. Figure 11 reports the
/// lineage-consuming query latency for Lazy, lineage indexes without
/// push-down, and the materialized cube; Figure 12 reports the capture
/// overhead Q1 pays with and without the push-down.
pub fn fig11_12(scale: &Scale) -> Vec<ExpRow> {
    let db = tpch_db(scale);
    let lineitem = db.relation("lineitem").unwrap();
    let mut rows = Vec::new();

    let q1_keys = vec!["l_returnflag".to_string(), "l_linestatus".to_string()];
    let consuming_keys = vec!["l_tax".to_string()];
    let aggs = drilldown_aggs();
    let base_sel = Expr::col("l_shipdate").lt(Expr::lit(q1_shipdate_cutoff()));

    // Capture configurations.
    let baseline = time_avg(scale.runs, scale.warmup, || {
        Executor::new(CaptureMode::Baseline)
            .execute(&q1(), &db)
            .unwrap()
    });
    let plain_latency = time_avg(scale.runs, scale.warmup, || {
        Executor::new(CaptureMode::Inject)
            .execute(&q1(), &db)
            .unwrap()
    });
    let pushdown_cfg = CaptureConfig::inject().with_workload(WorkloadOptions {
        agg_pushdown: Some(AggPushdown {
            partition_by: consuming_keys.clone(),
            aggs: aggs.clone(),
        }),
        ..Default::default()
    });
    let pushdown_latency = time_avg(scale.runs, scale.warmup, || {
        Executor::with_config(pushdown_cfg.clone())
            .execute(&q1(), &db)
            .unwrap()
    });
    rows.push(ExpRow::new(
        "fig12",
        "Q1",
        "NoPushdown",
        "overhead_pct",
        100.0 * overhead(plain_latency, baseline),
    ));
    rows.push(ExpRow::new(
        "fig12",
        "Q1",
        "AggPushdown",
        "overhead_pct",
        100.0 * overhead(pushdown_latency, baseline),
    ));

    // Consuming query latency per Q1 output bar.
    let plain = Executor::new(CaptureMode::Inject)
        .execute(&q1(), &db)
        .unwrap();
    let pushed = Executor::with_config(pushdown_cfg)
        .execute(&q1(), &db)
        .unwrap();
    let cube = pushed.artifacts.cube.as_ref().expect("cube materialized");
    for bar in 0..plain.relation.len() as Rid {
        let key_values = vec![
            plain.relation.value(bar as usize, 0),
            plain.relation.value(bar as usize, 1),
        ];
        let config = format!("bar={bar}");
        let rewrite = backward_predicate(&q1_keys, &key_values, Some(&base_sel));
        let lazy = time_avg(scale.runs, scale.warmup, || {
            lazy_consume(lineitem, &rewrite, None, &consuming_keys, &aggs).unwrap()
        });
        rows.push(ExpRow::new(
            "fig11",
            &config,
            "Lazy",
            "latency_ms",
            ms(lazy),
        ));

        let rids = plain.lineage.backward(&[bar], "lineitem");
        let no_push = time_avg(scale.runs, scale.warmup, || {
            consume_aggregate(lineitem, &rids, &consuming_keys, &aggs).unwrap()
        });
        rows.push(ExpRow::new(
            "fig11",
            &config,
            "NoAggPushdown",
            "latency_ms",
            ms(no_push),
        ));

        let from_cube = time_avg(scale.runs, scale.warmup, || {
            consume_from_cube(cube, bar).unwrap()
        });
        rows.push(ExpRow::new(
            "fig11",
            &config,
            "AggPushdown",
            "latency_ms",
            ms(from_cube),
        ));
    }
    rows
}

/// Figure 22 (Appendix G.2): per-relation instrumentation pruning on Q3 and
/// Q10.
pub fn fig22(scale: &Scale) -> Vec<ExpRow> {
    let db = tpch_db(scale);
    let mut rows = Vec::new();
    for (name, plan) in [("Q3", q3()), ("Q10", q10())] {
        let tables: Vec<String> = plan.base_tables().iter().map(|s| s.to_string()).collect();
        let baseline = time_avg(scale.runs, scale.warmup, || {
            Executor::new(CaptureMode::Baseline)
                .execute(&plan, &db)
                .unwrap()
        });
        rows.push(ExpRow::new(
            "fig22",
            name,
            "NoCapture",
            "latency_ms",
            ms(baseline),
        ));
        let all = time_avg(scale.runs, scale.warmup, || {
            Executor::new(CaptureMode::Inject)
                .execute(&plan, &db)
                .unwrap()
        });
        rows.push(ExpRow::new("fig22", name, "All", "latency_ms", ms(all)));

        for keep in &tables {
            let mut cfg = CaptureConfig::inject().default_directions(DirectionFilter::None);
            cfg = cfg.prune(keep.clone(), DirectionFilter::Both);
            let latency = time_avg(scale.runs, scale.warmup, || {
                Executor::with_config(cfg.clone())
                    .execute(&plan, &db)
                    .unwrap()
            });
            rows.push(ExpRow::new(
                "fig22",
                name,
                format!("Only:{keep}"),
                "latency_ms",
                ms(latency),
            ));
        }
    }
    rows
}

/// Figure 23 (Appendix G.2): selection push-down capture latency at varying
/// predicate selectivities of `l_tax < ?`.
pub fn fig23(scale: &Scale) -> Vec<ExpRow> {
    let db = tpch_db(scale);
    let mut rows = Vec::new();
    let baseline = time_avg(scale.runs, scale.warmup, || {
        Executor::new(CaptureMode::Baseline)
            .execute(&q1(), &db)
            .unwrap()
    });
    rows.push(ExpRow::new(
        "fig23",
        "Q1",
        "Baseline",
        "latency_ms",
        ms(baseline),
    ));
    let inject = time_avg(scale.runs, scale.warmup, || {
        Executor::new(CaptureMode::Inject)
            .execute(&q1(), &db)
            .unwrap()
    });
    rows.push(ExpRow::new(
        "fig23",
        "Q1",
        "Smoke-I",
        "latency_ms",
        ms(inject),
    ));

    for selectivity in [0.25, 0.5, 0.75] {
        let cutoff = 0.08 * selectivity; // l_tax is uniform in [0, 0.08].
        let cfg = CaptureConfig::inject().with_workload(WorkloadOptions {
            selection_pushdown: Some(Expr::col("l_tax").lt(Expr::lit(cutoff))),
            ..Default::default()
        });
        let latency = time_avg(scale.runs, scale.warmup, || {
            Executor::with_config(cfg.clone())
                .execute(&q1(), &db)
                .unwrap()
        });
        rows.push(ExpRow::new(
            "fig23",
            format!("sel={selectivity}"),
            "SelectionPushdown",
            "latency_ms",
            ms(latency),
        ));
    }
    rows
}

/// Sanity helper used by tests: the Q1 output over the scaled TPC-H data has
/// the four canonical groups.
pub fn q1_group_count(scale: &Scale) -> usize {
    let db = tpch_db(scale);
    Executor::new(CaptureMode::Baseline)
        .execute(&q1(), &db)
        .unwrap()
        .relation
        .len()
}

/// Returns true when the cube answer and the index-scan answer agree for
/// every Q1 bar (used by integration tests).
pub fn pushdown_matches_index_scan(scale: &Scale) -> bool {
    let db = tpch_db(scale);
    let lineitem = db.relation("lineitem").unwrap();
    let aggs = vec![AggExpr::count("cnt"), AggExpr::sum("l_quantity", "qty")];
    let cfg = CaptureConfig::inject().with_workload(WorkloadOptions {
        agg_pushdown: Some(AggPushdown {
            partition_by: vec!["l_tax".to_string()],
            aggs: aggs.clone(),
        }),
        ..Default::default()
    });
    let out = Executor::with_config(cfg).execute(&q1(), &db).unwrap();
    let cube = out.artifacts.cube.as_ref().unwrap();
    for bar in 0..out.relation.len() as Rid {
        let rids = out.lineage.backward(&[bar], "lineitem");
        let expected = consume_aggregate(lineitem, &rids, &["l_tax".to_string()], &aggs).unwrap();
        let got = consume_from_cube(cube, bar).unwrap();
        if expected.len() != got.len() {
            return false;
        }
        let total = |rel: &smoke_storage::Relation| -> f64 {
            (0..rel.len())
                .map(|r| rel.value(r, 2).as_float().unwrap_or(0.0))
                .sum()
        };
        if (total(&expected) - total(&got)).abs() > 1e-6 {
            return false;
        }
    }
    true
}

/// Convenience accessor for the benches: the parameter domain of Q1b.
pub fn q1b_parameter_domain() -> Vec<Value> {
    vec![Value::Str("MAIL".into()), Value::Str("AIR".into())]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig8_reports_overheads_for_all_queries() {
        let rows = fig8(&Scale::tiny());
        let queries: std::collections::HashSet<&str> =
            rows.iter().map(|r| r.config.as_str()).collect();
        assert_eq!(queries.len(), 4);
        assert!(rows
            .iter()
            .any(|r| r.technique == "Logic-Idx" && r.metric == "overhead_pct"));
    }

    #[test]
    fn fig10_covers_three_techniques() {
        let rows = fig10(&Scale::tiny());
        let t: std::collections::HashSet<&str> =
            rows.iter().map(|r| r.technique.as_str()).collect();
        assert!(t.contains("Lazy") && t.contains("NoDataSkipping") && t.contains("DataSkipping"));
    }

    #[test]
    fn fig11_12_pushdown_is_cheapest_at_query_time() {
        let rows = fig11_12(&Scale::tiny());
        let avg = |tech: &str| {
            let v: Vec<f64> = rows
                .iter()
                .filter(|r| r.experiment == "fig11" && r.technique == tech)
                .map(|r| r.value)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        assert!(avg("AggPushdown") <= avg("Lazy"));
        assert!(rows.iter().any(|r| r.experiment == "fig12"));
    }

    #[test]
    fn fig22_and_fig23_produce_rows() {
        assert!(!fig22(&Scale::tiny()).is_empty());
        let rows = fig23(&Scale::tiny());
        assert!(rows.iter().any(|r| r.technique == "SelectionPushdown"));
    }

    #[test]
    fn q1_has_four_groups_and_pushdown_is_correct() {
        assert_eq!(q1_group_count(&Scale::tiny()), 4);
        assert!(pushdown_matches_index_scan(&Scale::tiny()));
    }
}
