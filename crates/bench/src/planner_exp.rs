//! Planner strategy comparison on the zipfian group-by workload.
//!
//! One instrumented group-by captures every artifact the planner can choose
//! among (backward/forward indexes, a `v_bin`-partitioned rid index, and a
//! pushed-down cube), then three lineage-consuming query shapes are
//! evaluated with every feasible strategy — plus the planner's own choice —
//! so the `BENCH_planner.json` artifact records measured latency next to the
//! cost model's estimates and the chosen strategy per shape.

use smoke_core::ops::groupby::{group_by, GroupByOptions};
use smoke_core::{AggExpr, AggPushdown, Expr};
use smoke_datagen::zipf::{zipf_table_binned, ZipfSpec};
use smoke_planner::{LineagePlanner, LineageQuery, RewriteInfo, Strategy};

use crate::{capture_stat_rows, ms, time, time_avg, ExpRow, Scale};

/// Number of `v_bin` partitions the workload templates on.
pub const BINS: usize = 8;

/// The `planner` experiment: strategy latencies, cost estimates, capture
/// stats, and the planner's choice per query shape.
pub fn planner(scale: &Scale) -> Vec<ExpRow> {
    let mut rows = Vec::new();
    let n = scale.size(100_000, 2_000);
    let groups = 100usize;
    let table = zipf_table_binned(
        &ZipfSpec {
            theta: 1.0,
            rows: n,
            groups,
            seed: 21,
        },
        BINS,
    );

    // Capture with both workload-aware artifacts requested.
    let mut opts = GroupByOptions::inject();
    opts.workload.skipping_partition_by = vec!["v_bin".to_string()];
    opts.workload.agg_pushdown = Some(AggPushdown {
        partition_by: vec!["v_bin".to_string()],
        aggs: vec![AggExpr::count("cnt"), AggExpr::sum("v", "total")],
    });
    let (captured, capture_time) =
        time(|| group_by(&table, &["z".to_string()], &[AggExpr::count("cnt")], &opts).unwrap());
    let config = format!("n={n},g={groups},bins={BINS}");
    rows.push(ExpRow::new(
        "planner",
        &config,
        "capture",
        "capture_ms",
        ms(capture_time),
    ));
    rows.extend(capture_stat_rows(
        "planner",
        &config,
        "capture",
        &captured.stats,
    ));

    let planner = LineagePlanner::new(&table, &captured.output)
        .lineage(captured.lineage.input(0))
        .artifacts(&captured.artifacts)
        .rewrite(RewriteInfo::new(vec!["z".to_string()], None))
        .stats(captured.stats);

    // Drill into the most popular group (the worst-case trace width).
    let top = captured
        .output
        .column_by_name("cnt")
        .unwrap()
        .as_int()
        .iter()
        .enumerate()
        .max_by_key(|(_, &c)| c)
        .map(|(g, _)| g as u32)
        .unwrap_or(0);

    let shapes = [
        (
            // Matches the pushed-down cube exactly.
            "drilldown",
            LineageQuery::backward().rids([top]).aggregate(
                &["v_bin"],
                vec![AggExpr::count("cnt"), AggExpr::sum("v", "total")],
            ),
        ),
        (
            // Equality on the partition attribute: data-skipping territory.
            "skipped_count",
            LineageQuery::backward()
                .rids([top])
                .filter(Expr::col("v_bin").eq(Expr::lit(3)))
                .aggregate(&["v_bin"], vec![AggExpr::count("cnt")]),
        ),
        (
            // A plain backward trace.
            "plain_trace",
            LineageQuery::backward().rids([top]),
        ),
    ];

    for (shape, query) in &shapes {
        let explain = planner.explain(query).expect("workload always plannable");
        let config_q = format!("{config},q={shape}");
        for strategy in [
            Strategy::EagerTrace,
            Strategy::LazyRewrite,
            Strategy::PartitionPruned,
            Strategy::CubeHit,
        ] {
            let Some(cost) = explain.candidate_cost(strategy) else {
                continue;
            };
            if !cost.is_finite() {
                continue;
            }
            let latency = time_avg(scale.runs, scale.warmup, || {
                planner.execute_with(strategy, query).unwrap()
            });
            let technique = strategy.to_string();
            rows.push(ExpRow::new(
                "planner",
                &config_q,
                &technique,
                "query_ms",
                ms(latency),
            ));
            rows.push(ExpRow::new(
                "planner", &config_q, &technique, "est_cost", cost,
            ));
        }
        // The planner's pick, as both a flag row and an end-to-end latency
        // (including planning itself).
        rows.push(ExpRow::new(
            "planner",
            &config_q,
            explain.strategy.to_string(),
            "chosen",
            1.0,
        ));
        let planned = time_avg(scale.runs, scale.warmup, || planner.execute(query).unwrap());
        rows.push(ExpRow::new(
            "planner",
            &config_q,
            "PlannerChoice",
            "query_ms",
            ms(planned),
        ));
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planner_experiment_exercises_three_distinct_strategies() {
        let rows = planner(&Scale::tiny());
        let chosen: std::collections::HashSet<&str> = rows
            .iter()
            .filter(|r| r.metric == "chosen")
            .map(|r| r.technique.as_str())
            .collect();
        assert!(chosen.contains("CubeHit"), "chosen = {chosen:?}");
        assert!(chosen.contains("PartitionPruned"), "chosen = {chosen:?}");
        assert!(chosen.contains("EagerTrace"), "chosen = {chosen:?}");
        // Capture overhead is surfaced alongside latency.
        for metric in ["rid_resizes", "edges", "lineage_bytes", "capture_ms"] {
            assert!(
                rows.iter().any(|r| r.metric == metric),
                "missing {metric} row"
            );
        }
        assert!(rows.iter().all(|r| r.value.is_finite()));
        // Every shape also reports the planner's end-to-end latency.
        assert_eq!(
            rows.iter()
                .filter(|r| r.technique == "PlannerChoice")
                .count(),
            3
        );
    }
}
