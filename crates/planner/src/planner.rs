//! The cost-based lineage-query planner and its executor.

use smoke_core::lazy::{backward_predicate, lazy_backward, lazy_consume};
use smoke_core::query::consume_aggregate;
use smoke_core::workload::{LineageCube, WorkloadArtifacts};
use smoke_core::{CmpOp, EngineError, Expr, LogicalPlan, QueryOutput, Result};
use smoke_lineage::{CaptureStats, InputLineage, LineageIndex, PartitionedRidIndex};
use smoke_storage::{DataType, Relation, Rid, Value};

use std::collections::BTreeSet;

use crate::cost::{
    parallel_factor, CandidateCost, Explain, IoModel, Strategy, COST_CUBE_CELL, COST_EDGE,
    COST_KEY_TERM, COST_ROW_CONSUME, COST_ROW_PREDICATE_SCALAR, COST_ROW_PREDICATE_VECTOR,
    QUERY_OVERHEAD,
};
use crate::query::{Direction, LineageQuery, Selection};

/// What the lazy-rewrite strategy needs to know about the base query: its
/// group-by keys and the selection it applied to the base relation.
///
/// Derivable from a [`LogicalPlan`] for the single-table SPJA blocks the
/// paper's lazy rewrites target (group-by root over select/project/scan).
#[derive(Debug, Clone)]
pub struct RewriteInfo {
    /// Group-by keys of the base query (must be columns of both the base and
    /// output relations).
    pub keys: Vec<String>,
    /// The base query's own selection predicate, if any.
    pub base_selection: Option<Expr>,
}

impl RewriteInfo {
    /// Creates rewrite info from explicit parts.
    pub fn new(keys: Vec<String>, base_selection: Option<Expr>) -> Self {
        RewriteInfo {
            keys,
            base_selection,
        }
    }

    /// Extracts rewrite info from a logical plan: the plan must be a group-by
    /// over a single-table chain of select/project operators. Returns `None`
    /// for joins or non-aggregation-rooted plans (no lazy rewrite exists in
    /// `smoke_core::lazy` for those shapes).
    pub fn from_plan(plan: &LogicalPlan) -> Option<RewriteInfo> {
        let LogicalPlan::GroupBy { input, keys, .. } = plan else {
            return None;
        };
        let mut selection: Option<Expr> = None;
        let mut node = input.as_ref();
        loop {
            match node {
                LogicalPlan::Scan { .. } => break,
                LogicalPlan::Select { input, predicate } => {
                    selection = Some(match selection {
                        Some(s) => s.and(predicate.clone()),
                        None => predicate.clone(),
                    });
                    node = input;
                }
                LogicalPlan::Project { input, .. } => node = input,
                _ => return None,
            }
        }
        Some(RewriteInfo {
            keys: keys.clone(),
            base_selection: selection,
        })
    }
}

/// A compiled lineage plan: the chosen strategy, the resolved starting rids,
/// and the full `EXPLAIN` record.
#[derive(Debug, Clone)]
pub struct LineagePlan {
    /// The chosen strategy.
    pub strategy: Strategy,
    /// Why it was chosen: all candidates and their cost estimates.
    pub explain: Explain,
    /// The starting rids after selection resolution.
    pub(crate) rids: Vec<Rid>,
    /// The partition key extracted from the query's equality filter, when the
    /// filter matches the partitioned index's attribute.
    pub(crate) partition_key: Option<String>,
}

/// The unified result of executing a lineage plan.
#[derive(Debug, Clone)]
pub struct LineageResult {
    /// The strategy that produced this result.
    pub strategy: Strategy,
    /// The traced rid set, ascending and duplicate-free, restricted by the
    /// query's residual filter when one is present. Empty for
    /// [`Strategy::CubeHit`], which answers from materialized aggregates
    /// without touching base rids.
    pub rids: Vec<Rid>,
    /// The aggregated (or cube) answer relation, when the query consumes the
    /// traced rows.
    pub rows: Option<Relation>,
}

/// Plans and executes [`LineageQuery`]s over one traced view: a base
/// relation, the view's output relation, and whatever capture-time artifacts
/// exist (indexes, partitioned indexes, cubes, rewrite info, stats).
#[derive(Debug, Clone)]
pub struct LineagePlanner<'a> {
    base: &'a Relation,
    output: &'a Relation,
    backward: Option<&'a LineageIndex>,
    forward: Option<&'a LineageIndex>,
    partitioned: Option<&'a PartitionedRidIndex>,
    cube: Option<&'a LineageCube>,
    rewrite: Option<RewriteInfo>,
    stats: Option<CaptureStats>,
    dop: usize,
    io: Option<IoModel>,
}

impl<'a> LineagePlanner<'a> {
    /// Creates a planner over a base relation and a view output with no
    /// artifacts registered yet.
    pub fn new(base: &'a Relation, output: &'a Relation) -> Self {
        LineagePlanner {
            base,
            output,
            backward: None,
            forward: None,
            partitioned: None,
            cube: None,
            rewrite: None,
            stats: None,
            dop: 1,
            io: None,
        }
    }

    /// Creates a planner from an executed [`QueryOutput`], wiring up the
    /// lineage for `table` plus any workload artifacts and capture stats.
    pub fn from_query_output(out: &'a QueryOutput, base: &'a Relation, table: &str) -> Self {
        let mut planner = LineagePlanner::new(base, &out.relation)
            .artifacts(&out.artifacts)
            .stats(out.stats);
        if let Some(lin) = out.lineage.table(table) {
            if let Some(b) = &lin.backward {
                planner = planner.backward_index(b);
            }
            if let Some(f) = &lin.forward {
                planner = planner.forward_index(f);
            }
        }
        planner
    }

    /// Registers the backward lineage index (output rid → base rids).
    pub fn backward_index(mut self, index: &'a LineageIndex) -> Self {
        self.backward = Some(index);
        self
    }

    /// Registers the forward lineage index (base rid → output rids).
    pub fn forward_index(mut self, index: &'a LineageIndex) -> Self {
        self.forward = Some(index);
        self
    }

    /// Registers both directions of an [`InputLineage`].
    pub fn lineage(mut self, lineage: &'a InputLineage) -> Self {
        self.backward = lineage.backward.as_ref();
        self.forward = lineage.forward.as_ref();
        self
    }

    /// Registers workload-aware capture artifacts (partitioned index / cube).
    pub fn artifacts(mut self, artifacts: &'a WorkloadArtifacts) -> Self {
        self.partitioned = artifacts.partitioned.as_ref();
        self.cube = artifacts.cube.as_ref();
        self
    }

    /// Registers lazy-rewrite information about the base query.
    pub fn rewrite(mut self, rewrite: RewriteInfo) -> Self {
        self.rewrite = Some(rewrite);
        self
    }

    /// Registers capture statistics (used as a fallback cardinality source).
    pub fn stats(mut self, stats: CaptureStats) -> Self {
        self.stats = Some(stats);
        self
    }

    /// Sets the degree of parallelism the cost model assumes for full scans
    /// (see [`smoke_core::parallel`]). Only the scan-bound portion of
    /// [`Strategy::LazyRewrite`] benefits: morsel-parallel scans divide it by
    /// a sub-linear parallel factor (`1 + (dop - 1) * 0.7`), while the
    /// trace-bound strategies stay sequential. Values below 1 are clamped to
    /// 1 (the sequential engine).
    pub fn with_dop(mut self, dop: usize) -> Self {
        self.dop = dop.max(1);
        self
    }

    /// Registers the paged layout of the base relation (see
    /// [`IoModel::from_paged`]). With an I/O model, each candidate's cost
    /// includes the segment-store pages it would read — Yao's
    /// expected-distinct-pages over the base rows it fetches, discounted by
    /// the buffer pool's current residency — and [`Explain`] carries the
    /// per-candidate page estimates. This is what makes
    /// [`Strategy::PartitionPruned`] visibly skip physical page reads (it
    /// fetches a fraction of the rows and never re-evaluates the partition
    /// filter) and lets a warm pool tip the scales toward trace-bound
    /// strategies. Only backward queries charge base-relation I/O: forward
    /// traces land in the (small, resident) view output.
    pub fn with_io(mut self, io: IoModel) -> Self {
        self.io = Some(io);
        self
    }

    /// Compiles a query into a [`LineagePlan`], choosing the cheapest
    /// feasible strategy.
    pub fn plan(&self, query: &LineageQuery) -> Result<LineagePlan> {
        self.validate(query)?;
        let rids = self.resolve_selection(query)?;
        let width = rids.len();

        let primary = self.primary_index(query.direction);
        let (edges, entries) = self.edge_stats(query.direction, primary);
        let est_fanout = edges as f64 / entries.max(1) as f64;
        let traced_est = width as f64 * est_fanout;
        let aggregates = query.consume.aggregates();
        let filtered = query.consume.filter.is_some();
        // Per-row predicate costs depend on whether the expressions compile
        // to the vectorized kernel pipeline (see `smoke_core::kernels`).
        let trace_target = match query.direction {
            Direction::Forward => self.output,
            _ => self.base,
        };
        // `filter_rids` only takes the kernel path when the traced set covers
        // a reasonable fraction of the relation (narrow sets filter
        // row-at-a-time); the cost must mirror that dispatch, not just
        // compilability.
        let wide_trace = traced_est * 8.0 >= trace_target.len() as f64;
        let filter_row_cost = match &query.consume.filter {
            Some(f) if wide_trace && smoke_core::KernelPlan::compile(f, trace_target).is_some() => {
                COST_ROW_PREDICATE_VECTOR
            }
            Some(_) => COST_ROW_PREDICATE_SCALAR,
            None => COST_ROW_PREDICATE_VECTOR,
        };
        let lazy_row_cost = {
            let base_sel_vector = self
                .rewrite
                .as_ref()
                .and_then(|r| r.base_selection.as_ref())
                .is_none_or(|sel| smoke_core::KernelPlan::compile(sel, self.base).is_some());
            let filter_vector = query
                .consume
                .filter
                .as_ref()
                .is_none_or(|f| smoke_core::KernelPlan::compile(f, self.base).is_some());
            if base_sel_vector && filter_vector {
                COST_ROW_PREDICATE_VECTOR
            } else {
                COST_ROW_PREDICATE_SCALAR
            }
        };

        // Partition-pruning applies when the residual filter is exactly an
        // equality on the partitioned index's attribute.
        let partition_key = match (self.partitioned, &query.consume.filter) {
            (Some(part), Some(filter)) => equality_literal(filter, part.attribute())
                .and_then(|v| self.coerced_partition_key(part.attribute(), v)),
            _ => None,
        };

        // With an I/O model, every candidate is additionally charged for the
        // distinct base-relation pages it would fault in, discounted by
        // current pool residency. Only the numeric columns a consuming
        // clause touches cost pages — `Str` columns stay resident, and a
        // pure rid trace never leaves the lineage index. Pruning fetches
        // both fewer rows (one partition's worth) and fewer columns (the
        // partition equality *is* the filter, so the filter column is never
        // re-read), which is why its page estimate sits strictly below the
        // eager trace's for any non-degenerate partitioning.
        let consume_cols: BTreeSet<&str> = query
            .consume
            .keys
            .iter()
            .map(String::as_str)
            .chain(
                query
                    .consume
                    .aggs
                    .iter()
                    .filter_map(|a| a.column.as_deref()),
            )
            .collect();
        let mut eager_cols = consume_cols.clone();
        if let Some(f) = &query.consume.filter {
            expr_columns(f, &mut eager_cols);
        }
        let io_charge = |rows: f64, cols: &BTreeSet<&str>| -> (f64, f64) {
            match &self.io {
                Some(io) if query.direction != Direction::Forward => {
                    let pages =
                        io.expected_pages(rows, self.base.len(), self.paged_column_count(cols));
                    (pages, io.read_cost(pages))
                }
                _ => (0.0, 0.0),
            }
        };

        let mut candidates = Vec::new();

        // CubeHit: a single-rid aggregate matching the cube exactly.
        candidates.push(match self.cube {
            Some(cube)
                if query.direction == Direction::Backward
                    && width == 1
                    && aggregates
                    && !filtered
                    && query.consume.keys == cube.partition_by()
                    && query.consume.aggs == cube.aggs() =>
            {
                let cells = cube.cell_count() as f64 / cube.len().max(1) as f64;
                CandidateCost {
                    strategy: Strategy::CubeHit,
                    cost: QUERY_OVERHEAD + cells * COST_CUBE_CELL,
                    est_pages: 0.0,
                    feasible: true,
                    note: format!("{cells:.1} cells/entry, zero base access"),
                }
            }
            Some(_) => infeasible(
                Strategy::CubeHit,
                "query shape does not match the materialized cube",
            ),
            None => infeasible(Strategy::CubeHit, "no cube captured"),
        });

        // PartitionPruned: scan only the partition named by the filter.
        candidates.push(match (self.partitioned, &partition_key) {
            (Some(part), Some(_)) if query.direction == Direction::Backward => {
                let frac = 1.0 / self.avg_partitions(part, &rids).max(1.0);
                let per_row = COST_EDGE + if aggregates { COST_ROW_CONSUME } else { 0.0 };
                let fetched = if aggregates { traced_est * frac } else { 0.0 };
                let (est_pages, io_cost) = io_charge(fetched, &consume_cols);
                CandidateCost {
                    strategy: Strategy::PartitionPruned,
                    cost: QUERY_OVERHEAD + traced_est * frac * per_row + io_cost,
                    est_pages,
                    feasible: true,
                    note: format!("scans ~{:.0}% of each rid array", frac * 100.0),
                }
            }
            (Some(_), _) => infeasible(
                Strategy::PartitionPruned,
                "filter is not an equality on the partition attribute",
            ),
            (None, _) => infeasible(Strategy::PartitionPruned, "no partitioned index captured"),
        });

        // EagerTrace: secondary index scan.
        candidates.push(match primary {
            Some(_) => {
                let mut cost = QUERY_OVERHEAD + traced_est * COST_EDGE;
                let mut reach = traced_est;
                for idx in &query.chain {
                    let f = idx.edge_count() as f64 / idx.len().max(1) as f64;
                    cost += reach * COST_EDGE;
                    reach *= f;
                }
                if filtered {
                    cost += traced_est * filter_row_cost;
                }
                if aggregates {
                    cost += traced_est * COST_ROW_CONSUME;
                }
                let fetched = if filtered || aggregates {
                    traced_est
                } else {
                    0.0
                };
                let (est_pages, io_cost) = io_charge(fetched, &eager_cols);
                CandidateCost {
                    strategy: Strategy::EagerTrace,
                    cost: cost + io_cost,
                    est_pages,
                    feasible: true,
                    note: format!("~{traced_est:.0} edges via index scan"),
                }
            }
            None => infeasible(
                Strategy::EagerTrace,
                "no lineage index captured for this direction",
            ),
        });

        // LazyRewrite: full scan of the base relation with the rewrite
        // predicate (one OR term per selected output group). The scan is the
        // only morsel-parallelizable phase any strategy has, so it alone is
        // discounted by the configured degree of parallelism.
        candidates.push(match (&self.rewrite, query.direction) {
            (Some(_), Direction::Backward) => {
                let scan = self.base.len() as f64 * (lazy_row_cost + width as f64 * COST_KEY_TERM)
                    / parallel_factor(self.dop);
                let consume = if aggregates {
                    traced_est * COST_ROW_CONSUME
                } else {
                    0.0
                };
                // A chunked paged scan materializes every numeric column of
                // the relation, so the rewrite pays the full footprint — but
                // as one sequential sweep, which a prefetching pool serves
                // from batched run-ahead reads at the cheaper per-page rate.
                let (est_pages, io_cost) = self.io.as_ref().map_or((0.0, 0.0), |io| {
                    (io.total_pages(), io.seq_read_cost(io.total_pages()))
                });
                CandidateCost {
                    strategy: Strategy::LazyRewrite,
                    cost: QUERY_OVERHEAD + scan + consume + io_cost,
                    est_pages,
                    feasible: true,
                    note: format!("full scan of {} base rows", self.base.len()),
                }
            }
            (Some(_), _) => infeasible(
                Strategy::LazyRewrite,
                "lazy rewrites only answer backward queries",
            ),
            (None, _) => infeasible(Strategy::LazyRewrite, "no rewrite info for the base query"),
        });

        let best = candidates
            .iter()
            .filter(|c| c.feasible)
            .min_by(|a, b| a.cost.partial_cmp(&b.cost).expect("finite costs"))
            .ok_or_else(|| {
                EngineError::InvalidPlan(
                    "no feasible lineage strategy: no index, rewrite info, or artifact can \
                     answer this query"
                        .to_string(),
                )
            })?;

        let explain = Explain {
            strategy: best.strategy,
            cost: best.cost,
            selection_width: width,
            est_fanout,
            dop: self.dop,
            residency: self.io.as_ref().map(|io| io.residency),
            prefetch: self.io.as_ref().map(|io| io.prefetch),
            candidates: candidates.clone(),
        };
        Ok(LineagePlan {
            strategy: best.strategy,
            explain,
            rids,
            partition_key,
        })
    }

    /// Plans the query and returns only the `EXPLAIN` record.
    pub fn explain(&self, query: &LineageQuery) -> Result<Explain> {
        Ok(self.plan(query)?.explain)
    }

    /// Plans and executes a query in one call.
    pub fn execute(&self, query: &LineageQuery) -> Result<LineageResult> {
        let plan = self.plan(query)?;
        self.execute_plan(&plan, query)
    }

    /// Plans the query, then forces the given strategy (used by benchmarks
    /// and equivalence tests). Errors when the strategy is infeasible.
    pub fn execute_with(&self, strategy: Strategy, query: &LineageQuery) -> Result<LineageResult> {
        let plan = self.plan(query)?;
        let candidate = plan
            .explain
            .candidates
            .iter()
            .find(|c| c.strategy == strategy)
            .expect("all strategies are always costed");
        if !candidate.feasible {
            return Err(EngineError::InvalidPlan(format!(
                "strategy {strategy} is infeasible here: {}",
                candidate.note
            )));
        }
        let forced = LineagePlan {
            strategy,
            ..plan.clone()
        };
        self.execute_plan(&forced, query)
    }

    /// Executes a compiled plan.
    pub fn execute_plan(&self, plan: &LineagePlan, query: &LineageQuery) -> Result<LineageResult> {
        match plan.strategy {
            Strategy::EagerTrace => self.run_eager(plan, query),
            Strategy::LazyRewrite => self.run_lazy(plan, query),
            Strategy::PartitionPruned => self.run_pruned(plan, query),
            Strategy::CubeHit => self.run_cube(plan),
        }
    }

    /// Traces many rid sets through the eager index path, fanning the sets
    /// out over `std::thread` workers when the batch is large enough. The
    /// result preserves batch order; each entry is ascending and
    /// duplicate-free. This is the serving path for sessions that brush many
    /// marks / check many violations at once.
    ///
    /// The query template supplies only the direction and compose chain: the
    /// starting rids come from `rid_sets`, so a template with its own
    /// selection, filter, or aggregation is rejected rather than silently
    /// ignored.
    pub fn execute_batch(
        &self,
        query: &LineageQuery,
        rid_sets: &[Vec<Rid>],
    ) -> Result<Vec<Vec<Rid>>> {
        self.validate(query)?;
        if query.consumes() {
            return Err(EngineError::InvalidPlan(
                "batch tracing returns raw rid sets; filter/aggregate clauses are not \
                 evaluated — drop them or issue per-set execute() calls"
                    .to_string(),
            ));
        }
        if !matches!(query.selection, Selection::All) {
            return Err(EngineError::InvalidPlan(
                "batch tracing draws its starting rids from `rid_sets`; the query template \
                 must not carry its own selection"
                    .to_string(),
            ));
        }
        let primary = self.primary_index(query.direction).ok_or_else(|| {
            EngineError::InvalidPlan(
                "batch tracing requires a captured lineage index for this direction".to_string(),
            )
        })?;
        let trace_one = |set: &Vec<Rid>| -> Vec<Rid> {
            let mut traced = primary.trace_set(set);
            for idx in &query.chain {
                traced = idx.trace_set(&traced);
            }
            traced.sort_unstable();
            traced
        };

        // Small batches are not worth a thread launch.
        const PARALLEL_THRESHOLD: usize = 4;
        if rid_sets.len() < PARALLEL_THRESHOLD {
            return Ok(rid_sets.iter().map(trace_one).collect());
        }

        let workers = std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
            .clamp(2, 8)
            .min(rid_sets.len());
        let chunk = rid_sets.len().div_ceil(workers);
        let mut out: Vec<Vec<Rid>> = vec![Vec::new(); rid_sets.len()];
        std::thread::scope(|scope| {
            for (sets, slots) in rid_sets.chunks(chunk).zip(out.chunks_mut(chunk)) {
                let trace_one = &trace_one;
                scope.spawn(move || {
                    for (set, slot) in sets.iter().zip(slots) {
                        *slot = trace_one(set);
                    }
                });
            }
        });
        Ok(out)
    }

    // ---- planning helpers -------------------------------------------------

    fn validate(&self, query: &LineageQuery) -> Result<()> {
        match query.direction {
            Direction::MultiView if query.chain.is_empty() => Err(EngineError::InvalidPlan(
                "multi-view queries need at least one `then_through` index".to_string(),
            )),
            Direction::Backward | Direction::Forward if !query.chain.is_empty() => Err(
                EngineError::InvalidPlan("`then_through` requires a multi-view query".to_string()),
            ),
            Direction::MultiView if query.consumes() => Err(EngineError::InvalidPlan(
                "filter/aggregate over a multi-view trace is not supported: the chained rids \
                 refer to a relation the planner does not hold"
                    .to_string(),
            )),
            _ => Ok(()),
        }
    }

    fn primary_index(&self, direction: Direction) -> Option<&'a LineageIndex> {
        match direction {
            Direction::Forward => self.forward,
            Direction::Backward | Direction::MultiView => self.backward,
        }
    }

    /// `(edges, entries)` of the primary mapping, falling back to capture
    /// stats and relation cardinalities when no index was kept.
    fn edge_stats(&self, direction: Direction, primary: Option<&LineageIndex>) -> (usize, usize) {
        let entries = match direction {
            Direction::Forward => self.base.len(),
            _ => self.output.len(),
        };
        match primary {
            Some(idx) => (idx.edge_count(), idx.len().max(1)),
            None => {
                let edges = self
                    .stats
                    .map(|s| s.edges as usize)
                    .filter(|&e| e > 0)
                    .unwrap_or(self.base.len());
                (edges, entries.max(1))
            }
        }
    }

    /// Renders an equality literal as a partition key, coercing it to the
    /// partition column's data type first. Partition keys were rendered from
    /// column values during capture, so `v_bin = 3.0` over an Int column must
    /// probe key `"3"`, not `"3.0"` — predicate evaluation coerces
    /// numerically, and the key lookup must agree with it. Cross-type
    /// combinations with no numeric coercion return `None`, making pruning
    /// infeasible so the planner falls back to a strategy that evaluates the
    /// predicate itself.
    fn coerced_partition_key(&self, attr: &str, literal: Value) -> Option<String> {
        let idx = self.base.column_index(attr).ok()?;
        let coerced = match (self.base.schema().field(idx).data_type, literal) {
            (DataType::Int, Value::Int(i)) => Value::Int(i),
            (DataType::Int, Value::Float(f))
                if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 =>
            {
                Value::Int(f as i64)
            }
            (DataType::Float, Value::Float(f)) => Value::Float(f),
            (DataType::Float, Value::Int(i)) => Value::Float(i as f64),
            (DataType::Str, Value::Str(s)) => Value::Str(s),
            _ => return None,
        };
        Some(coerced.group_key())
    }

    /// Number of *paged* (numeric) base columns among `names` — `Str`
    /// columns stay resident under the paged layout and never cost a page
    /// read; unknown names resolve to zero pages rather than an error (the
    /// executor will surface them).
    fn paged_column_count(&self, names: &BTreeSet<&str>) -> usize {
        names
            .iter()
            .filter(|name| {
                self.base.column_index(name).ok().is_some_and(|idx| {
                    matches!(
                        self.base.schema().field(idx).data_type,
                        DataType::Int | DataType::Float
                    )
                })
            })
            .count()
    }

    /// Average number of partitions per selected entry, sampled over at most
    /// the first 8 selected rids.
    fn avg_partitions(&self, part: &PartitionedRidIndex, rids: &[Rid]) -> f64 {
        let sample: Vec<&Rid> = rids.iter().take(8).collect();
        if sample.is_empty() {
            return 1.0;
        }
        let total: usize = sample.iter().map(|&&r| part.keys(r as usize).len()).sum();
        (total as f64 / sample.len() as f64).max(1.0)
    }

    fn resolve_selection(&self, query: &LineageQuery) -> Result<Vec<Rid>> {
        let domain = match query.direction {
            Direction::Forward => self.base,
            _ => self.output,
        };
        match &query.selection {
            Selection::All => Ok((0..domain.len() as Rid).collect()),
            Selection::Rids(rids) => Ok(rids
                .iter()
                .copied()
                .filter(|&r| (r as usize) < domain.len())
                .collect()),
            // The scan routes through the kernel layer: comparison/boolean
            // predicates over columns and literals run vectorized, anything
            // else falls back to the row-at-a-time interpreter.
            Selection::Predicate(pred) => smoke_core::kernels::predicate_rids(domain, pred),
        }
    }

    // ---- execution --------------------------------------------------------

    fn run_eager(&self, plan: &LineagePlan, query: &LineageQuery) -> Result<LineageResult> {
        let primary = self.primary_index(query.direction).ok_or_else(|| {
            EngineError::InvalidPlan("eager trace without a lineage index".to_string())
        })?;
        let mut traced = primary.trace_set(&plan.rids);
        for idx in &query.chain {
            traced = idx.trace_set(&traced);
        }
        traced.sort_unstable();

        let target = match query.direction {
            Direction::Forward => self.output,
            _ => self.base,
        };
        let consume = &query.consume;
        // The residual filter restricts the traced rid set itself (so `rids`
        // means the same thing under every strategy); the aggregate then runs
        // over the restricted set. Wide traces evaluate the filter through
        // the column kernels, narrow ones row-at-a-time.
        if let Some(filter) = &consume.filter {
            traced = smoke_core::kernels::filter_rids(target, filter, &traced)?;
        }
        let rows = if consume.aggregates() {
            Some(consume_aggregate(
                target,
                &traced,
                &consume.keys,
                &consume.aggs,
            )?)
        } else {
            None
        };
        Ok(LineageResult {
            strategy: Strategy::EagerTrace,
            rids: traced,
            rows,
        })
    }

    fn run_lazy(&self, plan: &LineagePlan, query: &LineageQuery) -> Result<LineageResult> {
        let rewrite = self.rewrite.as_ref().ok_or_else(|| {
            EngineError::InvalidPlan("lazy rewrite without rewrite info".to_string())
        })?;
        if plan.rids.is_empty() {
            // An empty selection still yields an (empty) aggregate relation,
            // matching the eager path's result shape.
            let rows = if query.consume.aggregates() {
                Some(consume_aggregate(
                    self.base,
                    &[],
                    &query.consume.keys,
                    &query.consume.aggs,
                )?)
            } else {
                None
            };
            return Ok(LineageResult {
                strategy: Strategy::LazyRewrite,
                rids: Vec::new(),
                rows,
            });
        }
        let key_cols: Vec<usize> = rewrite
            .keys
            .iter()
            .map(|k| self.output.column_index(k))
            .collect::<std::result::Result<_, _>>()?;
        let mut predicate: Option<Expr> = None;
        for &rid in &plan.rids {
            let key_values: Vec<Value> = key_cols
                .iter()
                .map(|&c| self.output.value(rid as usize, c))
                .collect();
            let one =
                backward_predicate(&rewrite.keys, &key_values, rewrite.base_selection.as_ref());
            predicate = Some(match predicate {
                Some(p) => p.or(one),
                None => one,
            });
        }
        let predicate = predicate.expect("non-empty selection");

        let consume = &query.consume;
        // `rids` carries the residual-filtered trace under every strategy.
        let combined = match &consume.filter {
            Some(f) => predicate.clone().and(f.clone()),
            None => predicate.clone(),
        };
        let rids = lazy_backward(self.base, &combined)?;
        let rows = if consume.aggregates() {
            Some(lazy_consume(
                self.base,
                &predicate,
                consume.filter.as_ref(),
                &consume.keys,
                &consume.aggs,
            )?)
        } else {
            None
        };
        Ok(LineageResult {
            strategy: Strategy::LazyRewrite,
            rids,
            rows,
        })
    }

    fn run_pruned(&self, plan: &LineagePlan, query: &LineageQuery) -> Result<LineageResult> {
        let part = self.partitioned.ok_or_else(|| {
            EngineError::InvalidPlan("partition pruning without a partitioned index".to_string())
        })?;
        let key = plan.partition_key.as_ref().ok_or_else(|| {
            EngineError::InvalidPlan(
                "partition pruning needs an equality filter on the partition attribute".to_string(),
            )
        })?;
        let mut traced = Vec::new();
        for &rid in &plan.rids {
            traced.extend_from_slice(part.partition(rid as usize, key));
        }
        traced.sort_unstable();
        traced.dedup();
        let consume = &query.consume;
        // The partition equality *is* the filter, so no residual predicate
        // remains for the consuming aggregate.
        let rows = if consume.aggregates() {
            Some(consume_aggregate(
                self.base,
                &traced,
                &consume.keys,
                &consume.aggs,
            )?)
        } else {
            None
        };
        Ok(LineageResult {
            strategy: Strategy::PartitionPruned,
            rids: traced,
            rows,
        })
    }

    fn run_cube(&self, plan: &LineagePlan) -> Result<LineageResult> {
        let cube = self.cube.ok_or_else(|| {
            EngineError::InvalidPlan("cube answer without a materialized cube".to_string())
        })?;
        let rid = *plan.rids.first().ok_or_else(|| {
            EngineError::InvalidPlan("cube answers require exactly one selected rid".to_string())
        })?;
        Ok(LineageResult {
            strategy: Strategy::CubeHit,
            rids: Vec::new(),
            rows: Some(cube.query(rid as usize)?),
        })
    }
}

fn infeasible(strategy: Strategy, note: &str) -> CandidateCost {
    CandidateCost {
        strategy,
        cost: f64::INFINITY,
        est_pages: 0.0,
        feasible: false,
        note: note.to_string(),
    }
}

/// Collects the distinct column names an expression references.
fn expr_columns<'e>(expr: &'e Expr, out: &mut BTreeSet<&'e str>) {
    match expr {
        Expr::Column(c) => {
            out.insert(c.as_str());
        }
        Expr::Literal(_) => {}
        Expr::Cmp { left, right, .. } | Expr::Arith { left, right, .. } => {
            expr_columns(left, out);
            expr_columns(right, out);
        }
        Expr::And(l, r) | Expr::Or(l, r) => {
            expr_columns(l, out);
            expr_columns(r, out);
        }
        Expr::Not(e) => expr_columns(e, out),
        Expr::InList { expr, .. } => expr_columns(expr, out),
    }
}

/// Matches `attr = literal` (either operand order) and returns the literal.
fn equality_literal(filter: &Expr, attr: &str) -> Option<Value> {
    let Expr::Cmp {
        op: CmpOp::Eq,
        left,
        right,
    } = filter
    else {
        return None;
    };
    match (left.as_ref(), right.as_ref()) {
        (Expr::Column(c), Expr::Literal(v)) | (Expr::Literal(v), Expr::Column(c)) if c == attr => {
            Some(v.clone())
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use smoke_core::{AggExpr, PlanBuilder};

    #[test]
    fn rewrite_info_from_single_table_spja() {
        let plan = PlanBuilder::scan("zipf")
            .select(Expr::col("v").lt(Expr::lit(40.0)))
            .project(&["z", "v"])
            .group_by(&["z"], vec![AggExpr::count("cnt")])
            .build();
        let info = RewriteInfo::from_plan(&plan).unwrap();
        assert_eq!(info.keys, vec!["z"]);
        assert!(info.base_selection.is_some());
    }

    #[test]
    fn rewrite_info_rejects_joins_and_non_aggregates() {
        let join = PlanBuilder::scan("a")
            .join(PlanBuilder::scan("b"), &["x"], &["x"])
            .group_by(&["x"], vec![AggExpr::count("c")])
            .build();
        assert!(RewriteInfo::from_plan(&join).is_none());
        let scan = PlanBuilder::scan("a").build();
        assert!(RewriteInfo::from_plan(&scan).is_none());
    }

    #[test]
    fn equality_literal_matches_both_operand_orders() {
        let f = Expr::col("mode").eq(Expr::lit("AIR"));
        assert_eq!(equality_literal(&f, "mode"), Some(Value::Str("AIR".into())));
        let flipped = Expr::lit(3).eq(Expr::col("bin"));
        assert_eq!(equality_literal(&flipped, "bin"), Some(Value::Int(3)));
        let wrong_attr = Expr::col("other").eq(Expr::lit(1));
        assert!(equality_literal(&wrong_attr, "bin").is_none());
        let not_eq = Expr::col("bin").lt(Expr::lit(3));
        assert!(equality_literal(&not_eq, "bin").is_none());
    }
}
