//! # smoke-planner
//!
//! A cost-based planner for **lineage-consumption queries**, unifying the
//! capture-time artifacts of the Smoke engine (Psallidas & Wu, VLDB 2018)
//! behind one declarative API.
//!
//! Smoke's central argument is that lineage consumption should pick among
//! whatever was captured: eager rid indexes (§3), lazy relational rewrites
//! (§2.1), partitioned rid indexes for data skipping, and pushed-down cubes
//! (§4.2). This crate is the layer that owns that choice:
//!
//! * [`LineageQuery`] — a declarative builder: direction (backward /
//!   forward / multi-view), rid-set or predicate selection, an optional
//!   compose chain into other views, and an optional filter + group-by
//!   aggregation over the traced rows;
//! * [`LineagePlanner`] — holds one traced view's relations and artifacts,
//!   compiles queries into [`LineagePlan`]s via a cost model fed by
//!   [`smoke_lineage::CaptureStats`], index `edge_count`s, relation
//!   cardinalities, and the query's selection width;
//! * [`Strategy`] — the four execution strategies: [`Strategy::EagerTrace`],
//!   [`Strategy::LazyRewrite`], [`Strategy::PartitionPruned`], and
//!   [`Strategy::CubeHit`];
//! * [`Explain`] — names the chosen strategy, its cost estimate, and every
//!   candidate considered;
//! * [`IoModel`] — the paged-storage I/O term: when the base relation is
//!   spilled to a [`smoke_storage::PagedRelation`], each candidate is
//!   charged Yao's expected-distinct-pages over the rows it fetches,
//!   discounted by current buffer-pool residency, and the per-candidate
//!   page estimates surface in [`Explain`];
//! * a unified [`LineageResult`] (traced rids + optional answer relation)
//!   and a `std::thread`-parallel batch path
//!   ([`LineagePlanner::execute_batch`]) for multi-rid-set traces;
//! * [`wire`] — [`wire::QuerySpec`], the owned JSON-serializable mirror of
//!   [`LineageQuery`] (compose chains name views instead of borrowing
//!   indexes), result/explain encoders, and the cache-key normalization the
//!   serving layer's plan/result cache is keyed on, all over the dependency-
//!   free [`json`] module.
//!
//! ```
//! use smoke_core::ops::groupby::{group_by, GroupByOptions};
//! use smoke_core::AggExpr;
//! use smoke_planner::{LineagePlanner, LineageQuery, Strategy};
//! use smoke_storage::{DataType, Relation, Value};
//!
//! let mut b = Relation::builder("zipf")
//!     .column("z", DataType::Int)
//!     .column("v", DataType::Float);
//! for (z, v) in [(1, 10.0), (2, 20.0), (1, 30.0)] {
//!     b = b.row(vec![Value::Int(z), Value::Float(v)]);
//! }
//! let table = b.build().unwrap();
//! let captured = group_by(
//!     &table,
//!     &["z".to_string()],
//!     &[AggExpr::count("cnt")],
//!     &GroupByOptions::inject(),
//! )
//! .unwrap();
//!
//! let planner = LineagePlanner::new(&table, &captured.output)
//!     .lineage(captured.lineage.input(0));
//! let query = LineageQuery::backward().rids([0]);
//! let plan = planner.plan(&query).unwrap();
//! assert_eq!(plan.strategy, Strategy::EagerTrace);
//! let result = planner.execute_plan(&plan, &query).unwrap();
//! assert_eq!(result.rids, vec![0, 2]); // the two z=1 rows
//! ```

#![warn(missing_docs)]

mod cost;
pub mod json;
mod planner;
mod query;
pub mod wire;

pub use cost::{CandidateCost, Explain, IoModel, Strategy};
pub use planner::{LineagePlan, LineagePlanner, LineageResult, RewriteInfo};
pub use query::{Direction, LineageQuery, Selection};
