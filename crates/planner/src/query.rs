//! The declarative lineage-query builder.
//!
//! A [`LineageQuery`] describes *what* the application wants from lineage —
//! a direction, a selection of starting rids, an optional compose chain into
//! further views, and an optional filter + group-by aggregation over the
//! traced rows — without committing to *how* it is evaluated. The planner
//! ([`crate::LineagePlanner`]) compiles the query into a
//! [`crate::LineagePlan`] whose strategy is chosen by the cost model.

use smoke_core::{AggExpr, Expr};
use smoke_lineage::LineageIndex;
use smoke_storage::Rid;

/// The direction of a lineage trace (paper §2.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Output rids → base rids (`Lb`).
    Backward,
    /// Base rids → output rids (`Lf`).
    Forward,
    /// Backward to the shared base relation, then forward through one or more
    /// chained indexes into other views (the linked-brushing interaction of
    /// Figure 1). The chain is supplied with [`LineageQuery::then_through`].
    MultiView,
}

/// How the starting rids of a trace are selected.
#[derive(Debug, Clone)]
pub enum Selection {
    /// Every position of the traced relation.
    All,
    /// An explicit rid set.
    Rids(Vec<Rid>),
    /// The rids whose rows satisfy a predicate (evaluated over the output
    /// relation for backward/multi-view queries, over the base relation for
    /// forward queries).
    Predicate(Expr),
}

/// The lineage-consuming part of a query: an optional residual filter and an
/// optional group-by aggregation evaluated over the traced rows.
#[derive(Debug, Clone, Default)]
pub(crate) struct Consume {
    pub(crate) filter: Option<Expr>,
    pub(crate) keys: Vec<String>,
    pub(crate) aggs: Vec<AggExpr>,
}

impl Consume {
    pub(crate) fn aggregates(&self) -> bool {
        !self.keys.is_empty() || !self.aggs.is_empty()
    }
}

/// A declarative lineage(-consuming) query.
///
/// ```
/// use smoke_core::AggExpr;
/// use smoke_planner::LineageQuery;
///
/// // "Backward lineage of output rid 3, grouped by month with a count."
/// let q = LineageQuery::backward()
///     .rids([3])
///     .aggregate(&["month"], vec![AggExpr::count("cnt")]);
/// assert_eq!(q.direction(), smoke_planner::Direction::Backward);
/// ```
///
/// End to end: capture a group-by, then trace one output group back to the
/// base rows that formed it.
///
/// ```
/// use smoke_core::ops::groupby::{group_by, GroupByOptions};
/// use smoke_core::AggExpr;
/// use smoke_planner::{LineagePlanner, LineageQuery, Strategy};
/// use smoke_storage::{DataType, Relation, Value};
///
/// let base = Relation::builder("t")
///     .column("k", DataType::Int)
///     .row(vec![Value::Int(1)])
///     .row(vec![Value::Int(2)])
///     .row(vec![Value::Int(1)])
///     .build()
///     .unwrap();
/// let captured = group_by(
///     &base,
///     &["k".to_string()],
///     &[AggExpr::count("c")],
///     &GroupByOptions::inject(),
/// )
/// .unwrap();
///
/// let planner = LineagePlanner::new(&base, &captured.output)
///     .lineage(captured.lineage.input(0));
/// let result = planner.execute(&LineageQuery::backward().rids([0])).unwrap();
/// assert_eq!(result.strategy, Strategy::EagerTrace);
/// assert_eq!(result.rids, vec![0, 2]); // group k=1 came from rows 0 and 2
/// ```
#[derive(Debug, Clone)]
pub struct LineageQuery<'a> {
    pub(crate) direction: Direction,
    pub(crate) selection: Selection,
    /// Indexes to keep tracing through after the primary trace (multi-view).
    pub(crate) chain: Vec<&'a LineageIndex>,
    pub(crate) consume: Consume,
}

impl<'a> LineageQuery<'a> {
    fn new(direction: Direction) -> Self {
        LineageQuery {
            direction,
            selection: Selection::All,
            chain: Vec::new(),
            consume: Consume::default(),
        }
    }

    /// A backward lineage query (output → base).
    pub fn backward() -> Self {
        LineageQuery::new(Direction::Backward)
    }

    /// A forward lineage query (base → output).
    pub fn forward() -> Self {
        LineageQuery::new(Direction::Forward)
    }

    /// A multi-view query: backward to the base relation, then forward through
    /// the indexes added with [`LineageQuery::then_through`].
    pub fn multi_view() -> Self {
        LineageQuery::new(Direction::MultiView)
    }

    /// Starts the trace from an explicit rid set.
    pub fn rids(mut self, rids: impl IntoIterator<Item = Rid>) -> Self {
        self.selection = Selection::Rids(rids.into_iter().collect());
        self
    }

    /// Starts the trace from the rows matching `predicate`.
    ///
    /// ```
    /// use smoke_core::Expr;
    /// use smoke_planner::{LineageQuery, Selection};
    ///
    /// let q = LineageQuery::backward().matching(Expr::col("cnt").ge(Expr::lit(150)));
    /// assert!(matches!(q.selection(), Selection::Predicate(_)));
    /// ```
    pub fn matching(mut self, predicate: Expr) -> Self {
        self.selection = Selection::Predicate(predicate);
        self
    }

    /// Appends an index to the compose chain: after the primary trace, the
    /// result rids are traced through `index` (left to right).
    pub fn then_through(mut self, index: &'a LineageIndex) -> Self {
        self.chain.push(index);
        self
    }

    /// Restricts the traced rows to those satisfying `predicate` (evaluated
    /// over the relation the traced rids refer to).
    pub fn filter(mut self, predicate: Expr) -> Self {
        self.consume.filter = Some(predicate);
        self
    }

    /// Aggregates the traced rows: `SELECT keys, aggs FROM traced GROUP BY
    /// keys`.
    ///
    /// ```
    /// use smoke_core::AggExpr;
    /// use smoke_planner::LineageQuery;
    ///
    /// let q = LineageQuery::backward()
    ///     .rids([0])
    ///     .aggregate(&["region"], vec![AggExpr::sum("sales", "total")]);
    /// assert!(q.consumes());
    /// ```
    pub fn aggregate(mut self, keys: &[&str], aggs: Vec<AggExpr>) -> Self {
        self.consume.keys = keys.iter().map(|k| k.to_string()).collect();
        self.consume.aggs = aggs;
        self
    }

    /// The query's direction.
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// The query's starting selection.
    pub fn selection(&self) -> &Selection {
        &self.selection
    }

    /// Whether the query aggregates or filters the traced rows.
    pub fn consumes(&self) -> bool {
        self.consume.filter.is_some() || self.consume.aggregates()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_clauses() {
        let idx = LineageIndex::Identity(4);
        let q = LineageQuery::multi_view()
            .rids([1, 2])
            .then_through(&idx)
            .filter(Expr::col("v").gt(Expr::lit(1.0)));
        assert_eq!(q.direction(), Direction::MultiView);
        assert_eq!(q.chain.len(), 1);
        assert!(q.consumes());
        match q.selection() {
            Selection::Rids(r) => assert_eq!(r, &[1, 2]),
            other => panic!("unexpected selection {other:?}"),
        }
    }

    #[test]
    fn default_selection_is_all_and_non_consuming() {
        let q = LineageQuery::forward();
        assert!(matches!(q.selection(), Selection::All));
        assert!(!q.consumes());
        assert!(!q.consume.aggregates());
    }
}
