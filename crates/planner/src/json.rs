//! A minimal JSON value, parser, and renderer.
//!
//! The workspace is offline-only (vendored deps, no `serde`), so the wire
//! protocol of the serving layer ([`crate::wire`]) hand-rolls its JSON. The
//! implementation is deliberately small: it supports exactly the JSON the
//! wire format emits — objects, arrays, strings, numbers, booleans, and
//! null — with integers kept exact ([`Json::Int`]) so `i64` literals and
//! rids survive a round trip without going through `f64`.

use std::fmt::Write as _;

use smoke_core::EngineError;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number that lexes as an integer (no `.`/`e`), kept exact.
    Int(i64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is preserved (insertion order), which keeps
    /// rendering deterministic — the cache keys of [`crate::wire`] depend on
    /// that.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object constructor from key/value pairs.
    pub fn obj(pairs: impl IntoIterator<Item = (&'static str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// String constructor.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// Looks up a key in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `f64` (integers are widened).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as `i64`, if it is integral.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Json::Int(i) => Some(*i),
            Json::Num(n) if n.fract() == 0.0 && n.abs() < 2f64.powi(53) => Some(*n as i64),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Json::Null)
    }

    /// Renders the value as compact JSON text. Non-finite floats render as
    /// `null` (JSON has no representation for them).
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(true) => out.push_str("true"),
            Json::Bool(false) => out.push_str("false"),
            Json::Int(i) => {
                let _ = write!(out, "{i}");
            }
            Json::Num(n) if n.is_finite() => {
                let _ = write!(out, "{n}");
            }
            Json::Num(_) => out.push_str("null"),
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render_into(out);
                }
                out.push(']');
            }
            Json::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text into a [`Json`] value. Trailing non-whitespace is an
/// error, as is any malformed construct.
pub fn parse(text: &str) -> Result<Json, EngineError> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> EngineError {
        EngineError::InvalidPlan(format!("JSON parse error at byte {}: {msg}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), EngineError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, EngineError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, EngineError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, EngineError> {
        self.eat(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, EngineError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, EngineError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let Some(b) = self.peek() else {
                return Err(self.err("unterminated string"));
            };
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let Some(esc) = self.peek() else {
                        return Err(self.err("unterminated escape"));
                    };
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by the wire
                            // format; lone surrogates map to the replacement
                            // character rather than failing the frame.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => {
                    // Re-sync to char boundaries for multi-byte UTF-8.
                    let start = self.pos - 1;
                    let len = utf8_len(b);
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .and_then(|c| std::str::from_utf8(c).ok())
                        .ok_or_else(|| self.err("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, EngineError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut integral = true;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-ascii number"))?;
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Json::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err("malformed number"))
    }
}

fn utf8_len(first: u8) -> usize {
    match first {
        0x00..=0x7f => 1,
        0xc0..=0xdf => 2,
        0xe0..=0xef => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let text = r#"{"a":[1,-2.5,"x\"y",true,null],"b":{"c":9007199254740993}}"#;
        let parsed = parse(text).unwrap();
        // i64 beyond 2^53 survives exactly because integers never pass
        // through f64.
        assert_eq!(
            parsed.get("b").unwrap().get("c").unwrap().as_i64(),
            Some(9007199254740993)
        );
        let rendered = parsed.render();
        assert_eq!(parse(&rendered).unwrap(), parsed);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["{", "[1,", "\"abc", "{\"a\" 1}", "12 34", "tru", ""] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn escapes_and_unescapes_control_characters() {
        let v = Json::Str("a\n\t\"\\\u{1}b".to_string());
        let rendered = v.render();
        assert_eq!(rendered, "\"a\\n\\t\\\"\\\\\\u0001b\"");
        assert_eq!(parse(&rendered).unwrap(), v);
    }

    #[test]
    fn unicode_strings_survive() {
        let v = Json::Str("héllo ∀x π".to_string());
        assert_eq!(parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn accessors_distinguish_types() {
        let v = parse(r#"{"n":3,"f":1.5,"s":"x","b":false,"a":[],"z":null}"#).unwrap();
        assert_eq!(v.get("n").unwrap().as_i64(), Some(3));
        assert_eq!(v.get("n").unwrap().as_f64(), Some(3.0));
        assert_eq!(v.get("f").unwrap().as_f64(), Some(1.5));
        assert_eq!(v.get("f").unwrap().as_i64(), None);
        assert_eq!(v.get("s").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("b").unwrap().as_bool(), Some(false));
        assert_eq!(v.get("a").unwrap().as_arr(), Some(&[][..]));
        assert!(v.get("z").unwrap().is_null());
        assert!(v.get("missing").is_none());
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(Json::Num(f64::INFINITY).render(), "null");
        assert_eq!(Json::Num(f64::NAN).render(), "null");
    }
}
