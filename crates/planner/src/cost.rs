//! The planner's cost model and `EXPLAIN` output.
//!
//! Costs are unitless "work units" proportional to the number of memory
//! touches each strategy performs; the absolute scale is irrelevant, only the
//! ordering between candidate strategies matters. The inputs are the
//! statistics the capture side already maintains ([`smoke_lineage::CaptureStats`],
//! index `edge_count`/`len`), relation cardinalities, and the selection width
//! of the query — exactly the signals the paper argues a lineage-aware
//! optimizer should own.

use std::fmt;

/// The evaluation strategies a [`crate::LineageQuery`] can compile into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Secondary-index scan over a captured [`smoke_lineage::LineageIndex`]
    /// (rid array / rid index / CSR), §2.1 "lineage query as index scan".
    EagerTrace,
    /// Relational rewrite over the base relation with no captured index
    /// (paper §2.1, Appendix C; `smoke_core::lazy`).
    LazyRewrite,
    /// Data skipping over a [`smoke_lineage::PartitionedRidIndex`]: scan only
    /// the partition matching the query's equality filter (§4.2).
    PartitionPruned,
    /// Answer straight from the [`smoke_core::LineageCube`] materialized by
    /// group-by push-down — no base-relation access at all (§4.2, Fig. 11).
    CubeHit,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Strategy::EagerTrace => "EagerTrace",
            Strategy::LazyRewrite => "LazyRewrite",
            Strategy::PartitionPruned => "PartitionPruned",
            Strategy::CubeHit => "CubeHit",
        };
        f.write_str(name)
    }
}

/// Reading one lineage edge out of an index (plus its dedup check).
///
/// The remaining constants are calibrated against this unit from measured
/// release-mode latencies on the 1M-row zipfian workload (~60 ns/edge for an
/// eager trace, ~8 ns/row for a vectorized predicate scan, ~1.8 ns/row per
/// additional OR'd key term, ~120 ns/row for hash re-aggregation).
pub(crate) const COST_EDGE: f64 = 1.0;
/// Evaluating a predicate against one base row in a full scan when the
/// predicate compiles to a column-kernel pipeline (comparison/boolean trees
/// over columns and literals — including every lazy-rewrite key-equality
/// chain).
pub(crate) const COST_ROW_PREDICATE_VECTOR: f64 = 0.15;
/// Evaluating a predicate against one base row through the row-at-a-time
/// interpreter (arithmetic or other non-kernelizable shapes).
pub(crate) const COST_ROW_PREDICATE_SCALAR: f64 = 2.5;
/// Extra per-row cost for every OR'd key-equality term of a lazy rewrite
/// (one term per selected output group; each term is one column kernel).
pub(crate) const COST_KEY_TERM: f64 = 0.05;
/// Hashing + aggregating one traced row in a lineage-consuming aggregate.
pub(crate) const COST_ROW_CONSUME: f64 = 2.0;
/// Materializing one cube cell into the answer relation.
pub(crate) const COST_CUBE_CELL: f64 = 2.0;
/// Fixed per-query overhead (plan + result assembly), keeps tiny inputs from
/// producing degenerate zero costs.
pub(crate) const QUERY_OVERHEAD: f64 = 8.0;
/// Reading one [`smoke_storage::PAGE_SIZE`]-byte page out of the segment
/// store into the buffer pool. Calibrated against [`COST_EDGE`]: a pread of
/// an 8 KiB page that hits the OS page cache lands around 2–3 µs, roughly
/// forty edge lookups.
pub(crate) const COST_PAGE_READ: f64 = 40.0;
/// Reading one page as part of a *sequential run the prefetcher has been
/// hinted at*: the background workers batch consecutive pages into single
/// `read_run` syscalls and overlap the copy with decode, so the per-page
/// amortized cost lands around a fifth of a random demand read. Charged only
/// for full-scan footprints ([`IoModel::seq_read_cost`]) on pools whose
/// prefetcher is live; random trace-driven reads keep [`COST_PAGE_READ`].
pub(crate) const COST_PAGE_READ_SEQ: f64 = 8.0;
/// Marginal throughput of each worker beyond the first in a morsel-parallel
/// full scan, as a fraction of the first worker's. Sub-linear on purpose:
/// memory bandwidth is shared, the merge is sequential, and morsel-boundary
/// effects waste tail work — a calibrated ~70% keeps the model from crediting
/// `dop`x speedups that real hardware never delivers.
pub(crate) const PARALLEL_EFFICIENCY: f64 = 0.7;

/// The modeled speedup of a morsel-parallel full scan at degree of
/// parallelism `dop`: `1 + (dop - 1) * PARALLEL_EFFICIENCY`. Only the
/// scan-bound portion of [`Strategy::LazyRewrite`] is divided by this —
/// trace-bound strategies (Eager/Pruned/Cube) touch far fewer rows and run
/// sequentially, so parallelism narrows Lazy's gap without reordering the
/// Cube < Pruned < Eager ladder.
pub(crate) fn parallel_factor(dop: usize) -> f64 {
    1.0 + (dop.max(1) - 1) as f64 * PARALLEL_EFFICIENCY
}

/// Describes the paged layout of a traced view's base relation so the cost
/// model can charge strategies for the pages they would actually read
/// (see [`smoke_storage::PagedRelation`] and `smoke_pager::BufferPool`).
///
/// The model is per-column: numeric columns are independent page runs of
/// [`smoke_storage::ROWS_PER_PAGE`] fixed-width values, so a strategy that
/// fetches `k` of `n` rows from `c` columns touches
/// `c * pages_per_column * (1 - (1 - k/n)^rows_per_page)` distinct pages —
/// Yao's expected-distinct-blocks formula with the usual sampling
/// approximation. Reads are then discounted by the buffer pool's current
/// residency before being charged at the fixed per-page read cost
/// ([`IoModel::read_cost`]).
#[derive(Debug, Clone, Copy)]
pub struct IoModel {
    /// Pages each paged column of the base relation occupies.
    pub pages_per_column: u64,
    /// Number of paged (numeric) columns in the base relation.
    pub columns: usize,
    /// Fixed-width values stored per page.
    pub rows_per_page: usize,
    /// Fraction of the relation's pages currently resident in the buffer
    /// pool, in `[0, 1]`.
    pub residency: f64,
    /// Whether the relation's pool runs a background prefetcher. Sequential
    /// full-scan footprints are then charged [`COST_PAGE_READ_SEQ`] per page
    /// instead of [`COST_PAGE_READ`]; random (trace-driven) reads are
    /// unaffected.
    pub prefetch: bool,
}

impl IoModel {
    /// Builds the model straight from a spilled relation and its pool.
    pub fn from_paged(relation: &smoke_storage::PagedRelation) -> IoModel {
        IoModel {
            pages_per_column: relation.pages_per_column() as u64,
            columns: relation.paged_columns(),
            rows_per_page: smoke_storage::ROWS_PER_PAGE,
            residency: relation.resident_fraction(),
            prefetch: relation.pool().prefetch_enabled(),
        }
    }

    /// Total pages across every paged column (a full scan's footprint).
    pub fn total_pages(&self) -> f64 {
        self.pages_per_column as f64 * self.columns as f64
    }

    /// Expected distinct pages touched when fetching `k` of `n` rows from
    /// `columns` paged columns (Yao's formula). Monotone in `k`: pruning a
    /// trace down to a fraction of its rids strictly shrinks the estimate
    /// until every page is touched anyway.
    pub fn expected_pages(&self, k: f64, n: usize, columns: usize) -> f64 {
        if n == 0 || k <= 0.0 || self.pages_per_column == 0 {
            return 0.0;
        }
        let miss = (1.0 - (k.min(n as f64) / n as f64)).powi(self.rows_per_page as i32);
        let frac = 1.0 - miss;
        frac * self.pages_per_column as f64 * columns.min(self.columns) as f64
    }

    /// Work units charged for reading `pages` pages, discounted by the
    /// fraction the pool already holds.
    pub fn read_cost(&self, pages: f64) -> f64 {
        pages * (1.0 - self.residency.clamp(0.0, 1.0)) * COST_PAGE_READ
    }

    /// Work units charged for reading `pages` pages as one sequential sweep.
    /// On a prefetching pool the run-ahead hints issued by the chunked scan
    /// operators turn the sweep into batched `read_run`s, charged at
    /// [`COST_PAGE_READ_SEQ`]; without a prefetcher a sequential scan still
    /// pays the full random-read rate.
    pub fn seq_read_cost(&self, pages: f64) -> f64 {
        let per_page = if self.prefetch {
            COST_PAGE_READ_SEQ
        } else {
            COST_PAGE_READ
        };
        pages * (1.0 - self.residency.clamp(0.0, 1.0)) * per_page
    }
}

/// One costed strategy candidate.
#[derive(Debug, Clone)]
pub struct CandidateCost {
    /// The candidate strategy.
    pub strategy: Strategy,
    /// Estimated cost in work units; `f64::INFINITY` when infeasible.
    pub cost: f64,
    /// Estimated distinct base-relation pages the strategy reads. Always
    /// `0.0` when the planner has no [`IoModel`] (fully in-RAM base) and for
    /// infeasible candidates.
    pub est_pages: f64,
    /// Whether the strategy can answer this query with the artifacts at hand.
    pub feasible: bool,
    /// Why the candidate is (in)feasible / how its cost was derived.
    pub note: String,
}

/// The planner's `EXPLAIN` output: the chosen strategy, its estimated cost,
/// and every candidate that was considered.
#[derive(Debug, Clone)]
pub struct Explain {
    /// The chosen strategy.
    pub strategy: Strategy,
    /// Estimated cost of the chosen strategy.
    pub cost: f64,
    /// Number of starting rids after selection resolution.
    pub selection_width: usize,
    /// Estimated average lineage fan-out per starting rid.
    pub est_fanout: f64,
    /// Degree of parallelism the scan costs were modeled with (1 = the
    /// sequential engine).
    pub dop: usize,
    /// Buffer-pool residency the I/O estimates were discounted by, when the
    /// planner holds an [`IoModel`]; `None` for a fully in-RAM base.
    pub residency: Option<f64>,
    /// Whether sequential scans were costed at the prefetcher's batched
    /// per-page rate ([`COST_PAGE_READ_SEQ`]); `None` without an [`IoModel`].
    pub prefetch: Option<bool>,
    /// All candidates, in planning order.
    pub candidates: Vec<CandidateCost>,
}

impl Explain {
    /// The cost recorded for `strategy`, if it was considered.
    pub fn candidate_cost(&self, strategy: Strategy) -> Option<f64> {
        self.candidates
            .iter()
            .find(|c| c.strategy == strategy)
            .map(|c| c.cost)
    }

    /// The page estimate recorded for `strategy`, if it was considered.
    pub fn candidate_pages(&self, strategy: Strategy) -> Option<f64> {
        self.candidates
            .iter()
            .find(|c| c.strategy == strategy)
            .map(|c| c.est_pages)
    }

    /// Renders the explain output as a single human-readable line. Page
    /// estimates appear only when the planner was given an [`IoModel`].
    pub fn render(&self) -> String {
        let mut out = format!(
            "strategy={} cost={:.1} width={} fanout={:.2} dop={}",
            self.strategy, self.cost, self.selection_width, self.est_fanout, self.dop
        );
        if let Some(res) = self.residency {
            out.push_str(&format!(" residency={:.0}%", res * 100.0));
        }
        if let Some(pf) = self.prefetch {
            out.push_str(if pf { " prefetch=on" } else { " prefetch=off" });
        }
        out.push_str(" | candidates: ");
        for (i, c) in self.candidates.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            if !c.feasible {
                out.push_str(&format!("{}=inf ({})", c.strategy, c.note));
            } else if self.residency.is_some() {
                out.push_str(&format!(
                    "{}={:.1}/{:.0}pg",
                    c.strategy, c.cost, c.est_pages
                ));
            } else {
                out.push_str(&format!("{}={:.1}", c.strategy, c.cost));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_explain() -> Explain {
        Explain {
            strategy: Strategy::CubeHit,
            cost: 12.0,
            selection_width: 1,
            est_fanout: 100.0,
            dop: 4,
            residency: None,
            prefetch: None,
            candidates: vec![
                CandidateCost {
                    strategy: Strategy::EagerTrace,
                    cost: 308.0,
                    est_pages: 17.0,
                    feasible: true,
                    note: "index scan".into(),
                },
                CandidateCost {
                    strategy: Strategy::LazyRewrite,
                    cost: f64::INFINITY,
                    est_pages: 0.0,
                    feasible: false,
                    note: "no rewrite info".into(),
                },
                CandidateCost {
                    strategy: Strategy::CubeHit,
                    cost: 12.0,
                    est_pages: 0.0,
                    feasible: true,
                    note: "cube lookup".into(),
                },
            ],
        }
    }

    #[test]
    fn render_names_chosen_strategy_and_candidates() {
        let explain = sample_explain();
        let line = explain.render();
        assert!(line.starts_with("strategy=CubeHit cost=12.0"));
        assert!(line.contains("dop=4"));
        assert!(line.contains("EagerTrace=308.0"));
        assert!(line.contains("LazyRewrite=inf (no rewrite info)"));
        assert!(!line.contains("pg"), "no page column without an IoModel");
        assert_eq!(explain.candidate_cost(Strategy::EagerTrace), Some(308.0));
        assert_eq!(explain.candidate_cost(Strategy::PartitionPruned), None);
        assert_eq!(explain.candidate_pages(Strategy::EagerTrace), Some(17.0));
    }

    #[test]
    fn render_includes_pages_when_io_modeled() {
        let mut explain = sample_explain();
        explain.residency = Some(0.25);
        explain.prefetch = Some(true);
        let line = explain.render();
        assert!(line.contains("residency=25%"), "{line}");
        assert!(line.contains("prefetch=on"), "{line}");
        assert!(line.contains("EagerTrace=308.0/17pg"), "{line}");
        assert!(line.contains("CubeHit=12.0/0pg"), "{line}");
    }

    #[test]
    fn expected_pages_is_monotone_and_bounded() {
        let io = IoModel {
            pages_per_column: 1000,
            columns: 3,
            rows_per_page: 1024,
            residency: 0.0,
            prefetch: false,
        };
        let n = 1000 * 1024;
        assert_eq!(io.expected_pages(0.0, n, 1), 0.0);
        assert_eq!(io.expected_pages(100.0, 0, 1), 0.0);
        let narrow = io.expected_pages(100.0, n, 1);
        let wide = io.expected_pages(10_000.0, n, 1);
        assert!(narrow > 0.0 && narrow < wide, "{narrow} vs {wide}");
        // Saturates at the column's full footprint, scales with columns, and
        // never exceeds the relation's layout.
        assert!(io.expected_pages(n as f64, n, 1) <= 1000.0 + 1e-9);
        assert_eq!(
            io.expected_pages(n as f64, n, 2),
            2.0 * io.expected_pages(n as f64, n, 1)
        );
        assert_eq!(
            io.expected_pages(n as f64, n, 8),
            io.expected_pages(n as f64, n, 3),
            "touched columns are capped at the layout's column count"
        );
        assert_eq!(io.total_pages(), 3000.0);
    }

    #[test]
    fn read_cost_discounts_resident_pages() {
        let cold = IoModel {
            pages_per_column: 10,
            columns: 1,
            rows_per_page: 1024,
            residency: 0.0,
            prefetch: false,
        };
        let warm = IoModel {
            residency: 0.75,
            ..cold
        };
        assert_eq!(cold.read_cost(10.0), 10.0 * COST_PAGE_READ);
        assert!((warm.read_cost(10.0) - 2.5 * COST_PAGE_READ).abs() < 1e-9);
        let hot = IoModel {
            residency: 1.0,
            ..cold
        };
        assert_eq!(hot.read_cost(10.0), 0.0);
    }

    #[test]
    fn seq_read_cost_discounts_only_prefetching_pools() {
        let plain = IoModel {
            pages_per_column: 10,
            columns: 1,
            rows_per_page: 1024,
            residency: 0.0,
            prefetch: false,
        };
        // No prefetcher: a sequential sweep costs the same as random reads.
        assert_eq!(plain.seq_read_cost(10.0), plain.read_cost(10.0));
        let hinted = IoModel {
            prefetch: true,
            ..plain
        };
        assert_eq!(hinted.seq_read_cost(10.0), 10.0 * COST_PAGE_READ_SEQ);
        // Prefetch never cheapens the random-access charge.
        assert_eq!(hinted.read_cost(10.0), 10.0 * COST_PAGE_READ);
        // Residency discount composes with the sequential rate.
        let warm = IoModel {
            residency: 0.5,
            ..hinted
        };
        assert_eq!(warm.seq_read_cost(10.0), 5.0 * COST_PAGE_READ_SEQ);
    }

    #[test]
    fn strategy_display_is_stable() {
        assert_eq!(Strategy::PartitionPruned.to_string(), "PartitionPruned");
        assert_eq!(Strategy::LazyRewrite.to_string(), "LazyRewrite");
    }

    #[test]
    fn parallel_factor_is_sublinear_and_monotone() {
        assert_eq!(parallel_factor(0), 1.0);
        assert_eq!(parallel_factor(1), 1.0);
        let f2 = parallel_factor(2);
        let f8 = parallel_factor(8);
        assert!(f2 > 1.0 && f2 < 2.0, "marginal workers are discounted");
        assert!(f8 > f2 && f8 < 8.0);
    }
}
