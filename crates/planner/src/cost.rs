//! The planner's cost model and `EXPLAIN` output.
//!
//! Costs are unitless "work units" proportional to the number of memory
//! touches each strategy performs; the absolute scale is irrelevant, only the
//! ordering between candidate strategies matters. The inputs are the
//! statistics the capture side already maintains ([`smoke_lineage::CaptureStats`],
//! index `edge_count`/`len`), relation cardinalities, and the selection width
//! of the query — exactly the signals the paper argues a lineage-aware
//! optimizer should own.

use std::fmt;

/// The evaluation strategies a [`crate::LineageQuery`] can compile into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Secondary-index scan over a captured [`smoke_lineage::LineageIndex`]
    /// (rid array / rid index / CSR), §2.1 "lineage query as index scan".
    EagerTrace,
    /// Relational rewrite over the base relation with no captured index
    /// (paper §2.1, Appendix C; `smoke_core::lazy`).
    LazyRewrite,
    /// Data skipping over a [`smoke_lineage::PartitionedRidIndex`]: scan only
    /// the partition matching the query's equality filter (§4.2).
    PartitionPruned,
    /// Answer straight from the [`smoke_core::LineageCube`] materialized by
    /// group-by push-down — no base-relation access at all (§4.2, Fig. 11).
    CubeHit,
}

impl fmt::Display for Strategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Strategy::EagerTrace => "EagerTrace",
            Strategy::LazyRewrite => "LazyRewrite",
            Strategy::PartitionPruned => "PartitionPruned",
            Strategy::CubeHit => "CubeHit",
        };
        f.write_str(name)
    }
}

/// Reading one lineage edge out of an index (plus its dedup check).
///
/// The remaining constants are calibrated against this unit from measured
/// release-mode latencies on the 1M-row zipfian workload (~60 ns/edge for an
/// eager trace, ~8 ns/row for a vectorized predicate scan, ~1.8 ns/row per
/// additional OR'd key term, ~120 ns/row for hash re-aggregation).
pub(crate) const COST_EDGE: f64 = 1.0;
/// Evaluating a predicate against one base row in a full scan when the
/// predicate compiles to a column-kernel pipeline (comparison/boolean trees
/// over columns and literals — including every lazy-rewrite key-equality
/// chain).
pub(crate) const COST_ROW_PREDICATE_VECTOR: f64 = 0.15;
/// Evaluating a predicate against one base row through the row-at-a-time
/// interpreter (arithmetic or other non-kernelizable shapes).
pub(crate) const COST_ROW_PREDICATE_SCALAR: f64 = 2.5;
/// Extra per-row cost for every OR'd key-equality term of a lazy rewrite
/// (one term per selected output group; each term is one column kernel).
pub(crate) const COST_KEY_TERM: f64 = 0.05;
/// Hashing + aggregating one traced row in a lineage-consuming aggregate.
pub(crate) const COST_ROW_CONSUME: f64 = 2.0;
/// Materializing one cube cell into the answer relation.
pub(crate) const COST_CUBE_CELL: f64 = 2.0;
/// Fixed per-query overhead (plan + result assembly), keeps tiny inputs from
/// producing degenerate zero costs.
pub(crate) const QUERY_OVERHEAD: f64 = 8.0;
/// Marginal throughput of each worker beyond the first in a morsel-parallel
/// full scan, as a fraction of the first worker's. Sub-linear on purpose:
/// memory bandwidth is shared, the merge is sequential, and morsel-boundary
/// effects waste tail work — a calibrated ~70% keeps the model from crediting
/// `dop`x speedups that real hardware never delivers.
pub(crate) const PARALLEL_EFFICIENCY: f64 = 0.7;

/// The modeled speedup of a morsel-parallel full scan at degree of
/// parallelism `dop`: `1 + (dop - 1) * PARALLEL_EFFICIENCY`. Only the
/// scan-bound portion of [`Strategy::LazyRewrite`] is divided by this —
/// trace-bound strategies (Eager/Pruned/Cube) touch far fewer rows and run
/// sequentially, so parallelism narrows Lazy's gap without reordering the
/// Cube < Pruned < Eager ladder.
pub(crate) fn parallel_factor(dop: usize) -> f64 {
    1.0 + (dop.max(1) - 1) as f64 * PARALLEL_EFFICIENCY
}

/// One costed strategy candidate.
#[derive(Debug, Clone)]
pub struct CandidateCost {
    /// The candidate strategy.
    pub strategy: Strategy,
    /// Estimated cost in work units; `f64::INFINITY` when infeasible.
    pub cost: f64,
    /// Whether the strategy can answer this query with the artifacts at hand.
    pub feasible: bool,
    /// Why the candidate is (in)feasible / how its cost was derived.
    pub note: String,
}

/// The planner's `EXPLAIN` output: the chosen strategy, its estimated cost,
/// and every candidate that was considered.
#[derive(Debug, Clone)]
pub struct Explain {
    /// The chosen strategy.
    pub strategy: Strategy,
    /// Estimated cost of the chosen strategy.
    pub cost: f64,
    /// Number of starting rids after selection resolution.
    pub selection_width: usize,
    /// Estimated average lineage fan-out per starting rid.
    pub est_fanout: f64,
    /// Degree of parallelism the scan costs were modeled with (1 = the
    /// sequential engine).
    pub dop: usize,
    /// All candidates, in planning order.
    pub candidates: Vec<CandidateCost>,
}

impl Explain {
    /// The cost recorded for `strategy`, if it was considered.
    pub fn candidate_cost(&self, strategy: Strategy) -> Option<f64> {
        self.candidates
            .iter()
            .find(|c| c.strategy == strategy)
            .map(|c| c.cost)
    }

    /// Renders the explain output as a single human-readable line.
    pub fn render(&self) -> String {
        let mut out = format!(
            "strategy={} cost={:.1} width={} fanout={:.2} dop={} | candidates: ",
            self.strategy, self.cost, self.selection_width, self.est_fanout, self.dop
        );
        for (i, c) in self.candidates.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            if c.feasible {
                out.push_str(&format!("{}={:.1}", c.strategy, c.cost));
            } else {
                out.push_str(&format!("{}=inf ({})", c.strategy, c.note));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_names_chosen_strategy_and_candidates() {
        let explain = Explain {
            strategy: Strategy::CubeHit,
            cost: 12.0,
            selection_width: 1,
            est_fanout: 100.0,
            dop: 4,
            candidates: vec![
                CandidateCost {
                    strategy: Strategy::EagerTrace,
                    cost: 308.0,
                    feasible: true,
                    note: "index scan".into(),
                },
                CandidateCost {
                    strategy: Strategy::LazyRewrite,
                    cost: f64::INFINITY,
                    feasible: false,
                    note: "no rewrite info".into(),
                },
                CandidateCost {
                    strategy: Strategy::CubeHit,
                    cost: 12.0,
                    feasible: true,
                    note: "cube lookup".into(),
                },
            ],
        };
        let line = explain.render();
        assert!(line.starts_with("strategy=CubeHit cost=12.0"));
        assert!(line.contains("dop=4"));
        assert!(line.contains("EagerTrace=308.0"));
        assert!(line.contains("LazyRewrite=inf (no rewrite info)"));
        assert_eq!(explain.candidate_cost(Strategy::EagerTrace), Some(308.0));
        assert_eq!(explain.candidate_cost(Strategy::PartitionPruned), None);
    }

    #[test]
    fn strategy_display_is_stable() {
        assert_eq!(Strategy::PartitionPruned.to_string(), "PartitionPruned");
        assert_eq!(Strategy::LazyRewrite.to_string(), "LazyRewrite");
    }

    #[test]
    fn parallel_factor_is_sublinear_and_monotone() {
        assert_eq!(parallel_factor(0), 1.0);
        assert_eq!(parallel_factor(1), 1.0);
        let f2 = parallel_factor(2);
        let f8 = parallel_factor(8);
        assert!(f2 > 1.0 && f2 < 2.0, "marginal workers are discounted");
        assert!(f8 > f2 && f8 < 8.0);
    }
}
