//! Wire encoding of the planner API: the declarative [`LineageQuery`] *is*
//! the serving layer's protocol, so this module gives it an owned,
//! JSON-serializable mirror ([`QuerySpec`]) plus encoders for
//! [`LineageResult`] and [`Explain`].
//!
//! A [`QuerySpec`] differs from a [`LineageQuery`] in exactly one way: the
//! multi-view compose chain names views (`then_through("by_bin")`) instead of
//! borrowing `&LineageIndex`es — a remote client cannot hold index
//! references. The server resolves names against its snapshot with
//! [`QuerySpec::to_query`].
//!
//! [`QuerySpec::normalized`] canonicalizes a spec (sorted/deduped rid sets,
//! commutative operands ordered, literal-first comparisons flipped) so that
//! semantically equivalent queries render to the same [`QuerySpec::cache_key`]
//! — the key the serving layer's plan/result cache is built on.

use smoke_core::{AggExpr, AggFunc, ArithOp, CmpOp, EngineError, Expr, Result};
use smoke_lineage::LineageIndex;
use smoke_storage::{DataType, Relation, Rid, Value};

use crate::json::{parse, Json};
use crate::{Direction, Explain, LineageQuery, LineageResult, Strategy};

/// How a [`QuerySpec`] selects its starting rids (an owned mirror of
/// [`crate::Selection`]).
#[derive(Debug, Clone, PartialEq)]
pub enum SelectionSpec {
    /// Every position of the traced relation.
    All,
    /// An explicit rid set.
    Rids(Vec<Rid>),
    /// The rids whose rows satisfy a predicate.
    Predicate(Expr),
}

/// An owned, wire-serializable lineage query.
///
/// ```
/// use smoke_core::{AggExpr, Expr};
/// use smoke_planner::wire::QuerySpec;
///
/// let spec = QuerySpec::backward()
///     .rids([3, 1, 3])
///     .filter(Expr::col("v_bin").eq(Expr::lit(2)))
///     .aggregate(&["v_bin"], vec![AggExpr::count("cnt")]);
/// let decoded = QuerySpec::decode(&spec.encode()).unwrap();
/// assert_eq!(decoded, spec);
/// // Equivalent specs share a cache key: rid order and duplicates are
/// // normalized away.
/// assert_eq!(
///     spec.cache_key(),
///     QuerySpec::backward()
///         .rids([1, 3])
///         .filter(Expr::lit(2).eq(Expr::col("v_bin")))
///         .aggregate(&["v_bin"], vec![AggExpr::count("cnt")])
///         .cache_key()
/// );
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct QuerySpec {
    /// Trace direction.
    pub direction: Direction,
    /// Starting-rid selection.
    pub selection: SelectionSpec,
    /// Names of the views whose forward indexes the trace composes through
    /// (multi-view queries only).
    pub chain: Vec<String>,
    /// Residual filter over the traced rows.
    pub filter: Option<Expr>,
    /// Group-by keys of the consuming aggregate.
    pub keys: Vec<String>,
    /// Aggregate expressions of the consuming aggregate.
    pub aggs: Vec<AggExpr>,
    /// Forces a specific strategy instead of the cost-based choice.
    pub strategy: Option<Strategy>,
}

impl QuerySpec {
    fn new(direction: Direction) -> Self {
        QuerySpec {
            direction,
            selection: SelectionSpec::All,
            chain: Vec::new(),
            filter: None,
            keys: Vec::new(),
            aggs: Vec::new(),
            strategy: None,
        }
    }

    /// A backward query (output → base).
    pub fn backward() -> Self {
        QuerySpec::new(Direction::Backward)
    }

    /// A forward query (base → output).
    pub fn forward() -> Self {
        QuerySpec::new(Direction::Forward)
    }

    /// A multi-view query; add chain entries with [`QuerySpec::then_through`].
    pub fn multi_view() -> Self {
        QuerySpec::new(Direction::MultiView)
    }

    /// Starts the trace from an explicit rid set.
    pub fn rids(mut self, rids: impl IntoIterator<Item = Rid>) -> Self {
        self.selection = SelectionSpec::Rids(rids.into_iter().collect());
        self
    }

    /// Starts the trace from the rows matching `predicate`.
    pub fn matching(mut self, predicate: Expr) -> Self {
        self.selection = SelectionSpec::Predicate(predicate);
        self
    }

    /// Appends a view name to the compose chain.
    pub fn then_through(mut self, view: impl Into<String>) -> Self {
        self.chain.push(view.into());
        self
    }

    /// Restricts the traced rows to those satisfying `predicate`.
    pub fn filter(mut self, predicate: Expr) -> Self {
        self.filter = Some(predicate);
        self
    }

    /// Aggregates the traced rows.
    pub fn aggregate(mut self, keys: &[&str], aggs: Vec<AggExpr>) -> Self {
        self.keys = keys.iter().map(|k| k.to_string()).collect();
        self.aggs = aggs;
        self
    }

    /// Forces the given strategy instead of the planner's choice.
    pub fn force(mut self, strategy: Strategy) -> Self {
        self.strategy = Some(strategy);
        self
    }

    /// Resolves the spec into an executable [`LineageQuery`], mapping each
    /// chain entry to an index through `resolve` (typically "the forward
    /// index of the named view"). Unresolvable names error.
    pub fn to_query<'i>(
        &self,
        mut resolve: impl FnMut(&str) -> Option<&'i LineageIndex>,
    ) -> Result<LineageQuery<'i>> {
        let mut query = match self.direction {
            Direction::Backward => LineageQuery::backward(),
            Direction::Forward => LineageQuery::forward(),
            Direction::MultiView => LineageQuery::multi_view(),
        };
        query = match &self.selection {
            SelectionSpec::All => query,
            SelectionSpec::Rids(rids) => query.rids(rids.iter().copied()),
            SelectionSpec::Predicate(p) => query.matching(p.clone()),
        };
        for view in &self.chain {
            let idx = resolve(view).ok_or_else(|| {
                EngineError::InvalidPlan(format!(
                    "`then_through` names unknown or index-less view `{view}`"
                ))
            })?;
            query = query.then_through(idx);
        }
        if let Some(f) = &self.filter {
            query = query.filter(f.clone());
        }
        if !self.keys.is_empty() || !self.aggs.is_empty() {
            let keys: Vec<&str> = self.keys.iter().map(|k| k.as_str()).collect();
            query = query.aggregate(&keys, self.aggs.clone());
        }
        Ok(query)
    }

    /// The canonical form of this spec: rid sets sorted and deduplicated,
    /// commutative boolean/equality operands ordered, `IN` lists sorted. Two
    /// specs that normalize identically answer identically.
    pub fn normalized(&self) -> QuerySpec {
        let selection = match &self.selection {
            SelectionSpec::All => SelectionSpec::All,
            SelectionSpec::Rids(rids) => {
                let mut rids = rids.clone();
                rids.sort_unstable();
                rids.dedup();
                SelectionSpec::Rids(rids)
            }
            SelectionSpec::Predicate(p) => SelectionSpec::Predicate(normalize_expr(p)),
        };
        QuerySpec {
            direction: self.direction,
            selection,
            chain: self.chain.clone(),
            filter: self.filter.as_ref().map(normalize_expr),
            keys: self.keys.clone(),
            aggs: self.aggs.clone(),
            strategy: self.strategy,
        }
    }

    /// The cache key of this spec: the compact encoding of its normalized
    /// form. Equivalent queries collide (by design); distinct queries differ.
    pub fn cache_key(&self) -> String {
        self.normalized().encode()
    }

    /// Encodes the spec as compact JSON.
    pub fn encode(&self) -> String {
        self.to_json().render()
    }

    /// Decodes a spec from JSON text.
    pub fn decode(text: &str) -> Result<QuerySpec> {
        QuerySpec::from_json(&parse(text)?)
    }

    /// The spec as a [`Json`] value (for embedding in larger messages).
    pub fn to_json(&self) -> Json {
        let sel = match &self.selection {
            SelectionSpec::All => Json::str("all"),
            SelectionSpec::Rids(rids) => {
                Json::Arr(rids.iter().map(|&r| Json::Int(r as i64)).collect())
            }
            SelectionSpec::Predicate(p) => Json::obj([("pred", expr_to_json(p))]),
        };
        Json::obj([
            ("dir", Json::str(direction_name(self.direction))),
            ("sel", sel),
            (
                "chain",
                Json::Arr(self.chain.iter().map(Json::str).collect()),
            ),
            (
                "filter",
                self.filter.as_ref().map_or(Json::Null, expr_to_json),
            ),
            ("keys", Json::Arr(self.keys.iter().map(Json::str).collect())),
            (
                "aggs",
                Json::Arr(self.aggs.iter().map(agg_to_json).collect()),
            ),
            (
                "strategy",
                self.strategy
                    .map_or(Json::Null, |s| Json::str(s.to_string())),
            ),
        ])
    }

    /// Parses a spec out of a [`Json`] value.
    pub fn from_json(v: &Json) -> Result<QuerySpec> {
        let direction = direction_from_name(
            v.get("dir")
                .and_then(Json::as_str)
                .ok_or_else(|| bad("query is missing `dir`"))?,
        )?;
        let selection = match v.get("sel") {
            Some(Json::Str(s)) if s == "all" => SelectionSpec::All,
            Some(Json::Arr(items)) => SelectionSpec::Rids(
                items
                    .iter()
                    .map(|i| {
                        i.as_i64()
                            .and_then(|r| u32::try_from(r).ok())
                            .ok_or_else(|| bad("rid sets must contain non-negative integers"))
                    })
                    .collect::<Result<_>>()?,
            ),
            Some(obj) => match obj.get("pred") {
                Some(pred) => SelectionSpec::Predicate(expr_from_json(pred)?),
                None => return Err(bad("query is missing a valid `sel`")),
            },
            None => return Err(bad("query is missing a valid `sel`")),
        };
        let chain = match v.get("chain") {
            None | Some(Json::Null) => Vec::new(),
            Some(Json::Arr(items)) => items
                .iter()
                .map(|i| {
                    i.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| bad("chain entries must be view names"))
                })
                .collect::<Result<_>>()?,
            _ => return Err(bad("`chain` must be an array of view names")),
        };
        let filter = match v.get("filter") {
            None | Some(Json::Null) => None,
            Some(f) => Some(expr_from_json(f)?),
        };
        let keys = match v.get("keys") {
            None | Some(Json::Null) => Vec::new(),
            Some(Json::Arr(items)) => items
                .iter()
                .map(|i| {
                    i.as_str()
                        .map(str::to_string)
                        .ok_or_else(|| bad("group-by keys must be strings"))
                })
                .collect::<Result<_>>()?,
            _ => return Err(bad("`keys` must be an array of column names")),
        };
        let aggs = match v.get("aggs") {
            None | Some(Json::Null) => Vec::new(),
            Some(Json::Arr(items)) => items.iter().map(agg_from_json).collect::<Result<_>>()?,
            _ => return Err(bad("`aggs` must be an array")),
        };
        let strategy = match v.get("strategy") {
            None | Some(Json::Null) => None,
            Some(s) => Some(strategy_from_name(
                s.as_str().ok_or_else(|| bad("`strategy` must be a name"))?,
            )?),
        };
        Ok(QuerySpec {
            direction,
            selection,
            chain,
            filter,
            keys,
            aggs,
            strategy,
        })
    }
}

fn bad(msg: &str) -> EngineError {
    EngineError::InvalidPlan(format!("wire decode: {msg}"))
}

// ---- names ----------------------------------------------------------------

fn direction_name(d: Direction) -> &'static str {
    match d {
        Direction::Backward => "backward",
        Direction::Forward => "forward",
        Direction::MultiView => "multi_view",
    }
}

fn direction_from_name(name: &str) -> Result<Direction> {
    match name {
        "backward" => Ok(Direction::Backward),
        "forward" => Ok(Direction::Forward),
        "multi_view" => Ok(Direction::MultiView),
        other => Err(bad(&format!("unknown direction `{other}`"))),
    }
}

/// Parses a [`Strategy`] from its `Display` name.
pub fn strategy_from_name(name: &str) -> Result<Strategy> {
    match name {
        "EagerTrace" => Ok(Strategy::EagerTrace),
        "LazyRewrite" => Ok(Strategy::LazyRewrite),
        "PartitionPruned" => Ok(Strategy::PartitionPruned),
        "CubeHit" => Ok(Strategy::CubeHit),
        other => Err(bad(&format!("unknown strategy `{other}`"))),
    }
}

fn cmp_name(op: CmpOp) -> &'static str {
    match op {
        CmpOp::Eq => "eq",
        CmpOp::Ne => "ne",
        CmpOp::Lt => "lt",
        CmpOp::Le => "le",
        CmpOp::Gt => "gt",
        CmpOp::Ge => "ge",
    }
}

fn cmp_from_name(name: &str) -> Result<CmpOp> {
    match name {
        "eq" => Ok(CmpOp::Eq),
        "ne" => Ok(CmpOp::Ne),
        "lt" => Ok(CmpOp::Lt),
        "le" => Ok(CmpOp::Le),
        "gt" => Ok(CmpOp::Gt),
        "ge" => Ok(CmpOp::Ge),
        other => Err(bad(&format!("unknown comparison `{other}`"))),
    }
}

/// The mirror of a comparison when its operands are swapped
/// (`lit < col` ≡ `col > lit`).
fn cmp_mirror(op: CmpOp) -> CmpOp {
    match op {
        CmpOp::Eq => CmpOp::Eq,
        CmpOp::Ne => CmpOp::Ne,
        CmpOp::Lt => CmpOp::Gt,
        CmpOp::Le => CmpOp::Ge,
        CmpOp::Gt => CmpOp::Lt,
        CmpOp::Ge => CmpOp::Le,
    }
}

fn arith_name(op: ArithOp) -> &'static str {
    match op {
        ArithOp::Add => "add",
        ArithOp::Sub => "sub",
        ArithOp::Mul => "mul",
        ArithOp::Div => "div",
    }
}

fn arith_from_name(name: &str) -> Result<ArithOp> {
    match name {
        "add" => Ok(ArithOp::Add),
        "sub" => Ok(ArithOp::Sub),
        "mul" => Ok(ArithOp::Mul),
        "div" => Ok(ArithOp::Div),
        other => Err(bad(&format!("unknown arithmetic op `{other}`"))),
    }
}

fn agg_func_name(f: AggFunc) -> &'static str {
    match f {
        AggFunc::Count => "count",
        AggFunc::Sum => "sum",
        AggFunc::SumSq => "sum_sq",
        AggFunc::SumSqrt => "sum_sqrt",
        AggFunc::Min => "min",
        AggFunc::Max => "max",
        AggFunc::Avg => "avg",
        AggFunc::CountDistinct => "count_distinct",
    }
}

fn agg_func_from_name(name: &str) -> Result<AggFunc> {
    match name {
        "count" => Ok(AggFunc::Count),
        "sum" => Ok(AggFunc::Sum),
        "sum_sq" => Ok(AggFunc::SumSq),
        "sum_sqrt" => Ok(AggFunc::SumSqrt),
        "min" => Ok(AggFunc::Min),
        "max" => Ok(AggFunc::Max),
        "avg" => Ok(AggFunc::Avg),
        "count_distinct" => Ok(AggFunc::CountDistinct),
        other => Err(bad(&format!("unknown aggregate function `{other}`"))),
    }
}

fn datatype_name(t: DataType) -> &'static str {
    match t {
        DataType::Int => "int",
        DataType::Float => "float",
        DataType::Str => "str",
    }
}

fn datatype_from_name(name: &str) -> Result<DataType> {
    match name {
        "int" => Ok(DataType::Int),
        "float" => Ok(DataType::Float),
        "str" => Ok(DataType::Str),
        other => Err(bad(&format!("unknown data type `{other}`"))),
    }
}

// ---- values / expressions / aggregates ------------------------------------

/// Encodes a [`Value`] as a tagged JSON object (`{"i":5}`, `{"f":2.5}`,
/// `{"s":"x"}`), keeping the Int/Float distinction the engine's coercion
/// rules depend on.
pub fn value_to_json(v: &Value) -> Json {
    match v {
        Value::Int(i) => Json::obj([("i", Json::Int(*i))]),
        Value::Float(f) => Json::obj([("f", Json::Num(*f))]),
        Value::Str(s) => Json::obj([("s", Json::str(s.clone()))]),
    }
}

/// Decodes a tagged [`Value`].
pub fn value_from_json(v: &Json) -> Result<Value> {
    if let Some(i) = v.get("i") {
        return i
            .as_i64()
            .map(Value::Int)
            .ok_or_else(|| bad("`i` values must be integers"));
    }
    if let Some(f) = v.get("f") {
        return f
            .as_f64()
            .map(Value::Float)
            .ok_or_else(|| bad("`f` values must be numbers"));
    }
    if let Some(s) = v.get("s") {
        return s
            .as_str()
            .map(|s| Value::Str(s.to_string()))
            .ok_or_else(|| bad("`s` values must be strings"));
    }
    Err(bad("values must be tagged {\"i\"|\"f\"|\"s\": ...}"))
}

/// Encodes an expression tree as tagged JSON.
pub fn expr_to_json(e: &Expr) -> Json {
    match e {
        Expr::Column(name) => Json::obj([("col", Json::str(name.clone()))]),
        Expr::Literal(v) => Json::obj([("lit", value_to_json(v))]),
        Expr::Cmp { op, left, right } => Json::obj([
            ("cmp", Json::str(cmp_name(*op))),
            ("l", expr_to_json(left)),
            ("r", expr_to_json(right)),
        ]),
        Expr::Arith { op, left, right } => Json::obj([
            ("arith", Json::str(arith_name(*op))),
            ("l", expr_to_json(left)),
            ("r", expr_to_json(right)),
        ]),
        Expr::And(l, r) => Json::obj([("and", Json::Arr(vec![expr_to_json(l), expr_to_json(r)]))]),
        Expr::Or(l, r) => Json::obj([("or", Json::Arr(vec![expr_to_json(l), expr_to_json(r)]))]),
        Expr::Not(inner) => Json::obj([("not", expr_to_json(inner))]),
        Expr::InList { expr, list } => Json::obj([
            ("in", expr_to_json(expr)),
            ("list", Json::Arr(list.iter().map(value_to_json).collect())),
        ]),
    }
}

/// Decodes an expression tree.
pub fn expr_from_json(v: &Json) -> Result<Expr> {
    if let Some(col) = v.get("col") {
        let name = col.as_str().ok_or_else(|| bad("`col` must be a string"))?;
        return Ok(Expr::Column(name.to_string()));
    }
    if let Some(lit) = v.get("lit") {
        return Ok(Expr::Literal(value_from_json(lit)?));
    }
    if let Some(op) = v.get("cmp") {
        let op = cmp_from_name(op.as_str().ok_or_else(|| bad("`cmp` must be a name"))?)?;
        return Ok(Expr::Cmp {
            op,
            left: Box::new(expr_from_json(
                v.get("l").ok_or_else(|| bad("`cmp` needs `l`"))?,
            )?),
            right: Box::new(expr_from_json(
                v.get("r").ok_or_else(|| bad("`cmp` needs `r`"))?,
            )?),
        });
    }
    if let Some(op) = v.get("arith") {
        let op = arith_from_name(op.as_str().ok_or_else(|| bad("`arith` must be a name"))?)?;
        return Ok(Expr::Arith {
            op,
            left: Box::new(expr_from_json(
                v.get("l").ok_or_else(|| bad("`arith` needs `l`"))?,
            )?),
            right: Box::new(expr_from_json(
                v.get("r").ok_or_else(|| bad("`arith` needs `r`"))?,
            )?),
        });
    }
    for (key, build) in [
        ("and", Expr::And as fn(Box<Expr>, Box<Expr>) -> Expr),
        ("or", Expr::Or as fn(Box<Expr>, Box<Expr>) -> Expr),
    ] {
        if let Some(Json::Arr(items)) = v.get(key) {
            let [l, r] = items.as_slice() else {
                return Err(bad("boolean connectives take exactly two operands"));
            };
            let l = Box::new(expr_from_json(l)?);
            let r = Box::new(expr_from_json(r)?);
            return Ok(build(l, r));
        }
    }
    if let Some(inner) = v.get("not") {
        return Ok(Expr::Not(Box::new(expr_from_json(inner)?)));
    }
    if let Some(inner) = v.get("in") {
        let list = v
            .get("list")
            .and_then(Json::as_arr)
            .ok_or_else(|| bad("`in` needs a `list` array"))?;
        return Ok(Expr::InList {
            expr: Box::new(expr_from_json(inner)?),
            list: list.iter().map(value_from_json).collect::<Result<_>>()?,
        });
    }
    Err(bad("unrecognized expression node"))
}

fn agg_to_json(a: &AggExpr) -> Json {
    Json::obj([
        ("fn", Json::str(agg_func_name(a.func))),
        (
            "col",
            a.column
                .as_ref()
                .map_or(Json::Null, |c| Json::str(c.clone())),
        ),
        ("as", Json::str(a.alias.clone())),
    ])
}

fn agg_from_json(v: &Json) -> Result<AggExpr> {
    let func = agg_func_from_name(
        v.get("fn")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("aggregates need a `fn` name"))?,
    )?;
    let column = match v.get("col") {
        None | Some(Json::Null) => None,
        Some(c) => Some(
            c.as_str()
                .ok_or_else(|| bad("aggregate `col` must be a string"))?
                .to_string(),
        ),
    };
    let alias = v
        .get("as")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("aggregates need an `as` alias"))?
        .to_string();
    Ok(AggExpr {
        func,
        column,
        alias,
    })
}

// ---- normalization --------------------------------------------------------

/// Canonicalizes an expression: commutative operands ordered by their
/// encoding, literal-first comparisons flipped column-first (with the
/// operator mirrored), `IN` lists sorted and deduplicated.
fn normalize_expr(e: &Expr) -> Expr {
    match e {
        Expr::Column(_) | Expr::Literal(_) => e.clone(),
        Expr::Cmp { op, left, right } => {
            let l = normalize_expr(left);
            let r = normalize_expr(right);
            if matches!(l, Expr::Literal(_)) && !matches!(r, Expr::Literal(_)) {
                Expr::Cmp {
                    op: cmp_mirror(*op),
                    left: Box::new(r),
                    right: Box::new(l),
                }
            } else {
                Expr::Cmp {
                    op: *op,
                    left: Box::new(l),
                    right: Box::new(r),
                }
            }
        }
        Expr::Arith { op, left, right } => Expr::Arith {
            op: *op,
            left: Box::new(normalize_expr(left)),
            right: Box::new(normalize_expr(right)),
        },
        Expr::And(l, r) => {
            let (l, r) = ordered_pair(normalize_expr(l), normalize_expr(r));
            Expr::And(Box::new(l), Box::new(r))
        }
        Expr::Or(l, r) => {
            let (l, r) = ordered_pair(normalize_expr(l), normalize_expr(r));
            Expr::Or(Box::new(l), Box::new(r))
        }
        Expr::Not(inner) => Expr::Not(Box::new(normalize_expr(inner))),
        Expr::InList { expr, list } => {
            let mut list = list.clone();
            list.sort_by(|a, b| a.total_cmp(b));
            list.dedup_by(|a, b| a.total_cmp(b) == std::cmp::Ordering::Equal);
            Expr::InList {
                expr: Box::new(normalize_expr(expr)),
                list,
            }
        }
    }
}

/// Orders two commutative operands by their rendered encoding.
fn ordered_pair(l: Expr, r: Expr) -> (Expr, Expr) {
    if expr_to_json(&l).render() <= expr_to_json(&r).render() {
        (l, r)
    } else {
        (r, l)
    }
}

// ---- relations / results / explain ----------------------------------------

/// Encodes a relation as `{"name", "schema": [[col, type], ...],
/// "data": [[value, ...], ...]}`.
pub fn relation_to_json(rel: &Relation) -> Json {
    let schema = Json::Arr(
        rel.schema()
            .fields()
            .iter()
            .map(|f| {
                Json::Arr(vec![
                    Json::str(f.name.clone()),
                    Json::str(datatype_name(f.data_type)),
                ])
            })
            .collect(),
    );
    let data = Json::Arr(
        (0..rel.len())
            .map(|rid| {
                Json::Arr(
                    (0..rel.columns().len())
                        .map(|c| value_to_json(&rel.value(rid, c)))
                        .collect(),
                )
            })
            .collect(),
    );
    Json::obj([
        ("name", Json::str(rel.name().to_string())),
        ("schema", schema),
        ("data", data),
    ])
}

/// Decodes a relation encoded by [`relation_to_json`].
pub fn relation_from_json(v: &Json) -> Result<Relation> {
    let name = v
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| bad("relations need a `name`"))?;
    let schema = v
        .get("schema")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("relations need a `schema` array"))?;
    let mut builder = Relation::builder(name);
    for field in schema {
        let [col, ty] = field.as_arr().unwrap_or_default() else {
            return Err(bad("schema entries are [name, type] pairs"));
        };
        let col = col
            .as_str()
            .ok_or_else(|| bad("schema column names must be strings"))?;
        let ty = datatype_from_name(
            ty.as_str()
                .ok_or_else(|| bad("schema types must be names"))?,
        )?;
        builder = builder.column(col, ty);
    }
    let data = v
        .get("data")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("relations need a `data` array"))?;
    for row in data {
        let cells = row
            .as_arr()
            .ok_or_else(|| bad("relation rows must be arrays"))?;
        builder = builder.row(cells.iter().map(value_from_json).collect::<Result<_>>()?);
    }
    builder.build().map_err(EngineError::from)
}

/// Encodes a [`LineageResult`].
pub fn result_to_json(result: &LineageResult) -> Json {
    Json::obj([
        ("strategy", Json::str(result.strategy.to_string())),
        (
            "rids",
            Json::Arr(result.rids.iter().map(|&r| Json::Int(r as i64)).collect()),
        ),
        (
            "rows",
            result.rows.as_ref().map_or(Json::Null, relation_to_json),
        ),
    ])
}

/// Decodes a [`LineageResult`] encoded by [`result_to_json`].
pub fn result_from_json(v: &Json) -> Result<LineageResult> {
    let strategy = strategy_from_name(
        v.get("strategy")
            .and_then(Json::as_str)
            .ok_or_else(|| bad("results need a `strategy`"))?,
    )?;
    let rids = v
        .get("rids")
        .and_then(Json::as_arr)
        .ok_or_else(|| bad("results need a `rids` array"))?
        .iter()
        .map(|i| {
            i.as_i64()
                .and_then(|r| u32::try_from(r).ok())
                .ok_or_else(|| bad("result rids must be non-negative integers"))
        })
        .collect::<Result<_>>()?;
    let rows = match v.get("rows") {
        None | Some(Json::Null) => None,
        Some(r) => Some(relation_from_json(r)?),
    };
    Ok(LineageResult {
        strategy,
        rids,
        rows,
    })
}

/// Encodes an [`Explain`] record. Infeasible candidates carry `"cost": null`
/// (JSON cannot express infinity). `"residency"` is `null` and every
/// `"pages"` estimate `0` when the planner had no I/O model (in-RAM base).
pub fn explain_to_json(explain: &Explain) -> Json {
    let cost = |c: f64| {
        if c.is_finite() {
            Json::Num(c)
        } else {
            Json::Null
        }
    };
    Json::obj([
        ("strategy", Json::str(explain.strategy.to_string())),
        ("cost", cost(explain.cost)),
        ("width", Json::Int(explain.selection_width as i64)),
        ("fanout", Json::Num(explain.est_fanout)),
        ("dop", Json::Int(explain.dop as i64)),
        ("residency", explain.residency.map_or(Json::Null, Json::Num)),
        ("prefetch", explain.prefetch.map_or(Json::Null, Json::Bool)),
        (
            "candidates",
            Json::Arr(
                explain
                    .candidates
                    .iter()
                    .map(|c| {
                        Json::obj([
                            ("strategy", Json::str(c.strategy.to_string())),
                            ("cost", cost(c.cost)),
                            ("pages", Json::Num(c.est_pages)),
                            ("feasible", Json::Bool(c.feasible)),
                            ("note", Json::str(c.note.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(spec: &QuerySpec) {
        let decoded = QuerySpec::decode(&spec.encode()).unwrap();
        assert_eq!(&decoded, spec);
    }

    #[test]
    fn specs_round_trip() {
        roundtrip(&QuerySpec::backward());
        roundtrip(&QuerySpec::forward().rids([0, 7, 3]));
        roundtrip(
            &QuerySpec::multi_view()
                .rids([1])
                .then_through("by_bin")
                .then_through("by_z"),
        );
        roundtrip(
            &QuerySpec::backward()
                .matching(Expr::col("cnt").ge(Expr::lit(10)))
                .filter(
                    Expr::col("v")
                        .lt(Expr::lit(40.0))
                        .and(Expr::col("z").eq(Expr::lit(1))),
                )
                .aggregate(
                    &["v_bin"],
                    vec![AggExpr::count("c"), AggExpr::sum("v", "total")],
                )
                .force(Strategy::LazyRewrite),
        );
    }

    #[test]
    fn normalization_identifies_equivalent_specs() {
        let a = QuerySpec::backward().rids([3, 1, 2, 2]);
        let b = QuerySpec::backward().rids([1, 2, 3]);
        assert_eq!(a.cache_key(), b.cache_key());

        let flipped = QuerySpec::backward()
            .rids([0])
            .filter(Expr::lit(3).eq(Expr::col("v_bin")));
        let straight = QuerySpec::backward()
            .rids([0])
            .filter(Expr::col("v_bin").eq(Expr::lit(3)));
        assert_eq!(flipped.cache_key(), straight.cache_key());

        let and_lr = QuerySpec::backward().rids([0]).filter(
            Expr::col("a")
                .gt(Expr::lit(1))
                .and(Expr::col("b").lt(Expr::lit(2))),
        );
        let and_rl = QuerySpec::backward().rids([0]).filter(
            Expr::col("b")
                .lt(Expr::lit(2))
                .and(Expr::col("a").gt(Expr::lit(1))),
        );
        assert_eq!(and_lr.cache_key(), and_rl.cache_key());
    }

    #[test]
    fn normalization_mirrors_inequalities_when_flipping() {
        // `5 < col` must normalize to `col > 5`, not `col < 5`.
        let flipped = QuerySpec::backward()
            .rids([0])
            .filter(Expr::lit(5).lt(Expr::col("x")));
        let straight = QuerySpec::backward()
            .rids([0])
            .filter(Expr::col("x").gt(Expr::lit(5)));
        let wrong = QuerySpec::backward()
            .rids([0])
            .filter(Expr::col("x").lt(Expr::lit(5)));
        assert_eq!(flipped.cache_key(), straight.cache_key());
        assert_ne!(flipped.cache_key(), wrong.cache_key());
    }

    #[test]
    fn distinct_specs_keep_distinct_keys() {
        let base = QuerySpec::backward().rids([1]);
        assert_ne!(
            base.cache_key(),
            QuerySpec::backward().rids([2]).cache_key()
        );
        assert_ne!(base.cache_key(), QuerySpec::forward().rids([1]).cache_key());
        assert_ne!(
            base.cache_key(),
            base.clone().force(Strategy::EagerTrace).cache_key()
        );
        assert_ne!(
            base.cache_key(),
            base.clone()
                .aggregate(&["z"], vec![AggExpr::count("c")])
                .cache_key()
        );
    }

    #[test]
    fn in_list_normalization_sorts_and_dedups() {
        let a = QuerySpec::backward().rids([0]).filter(Expr::InList {
            expr: Box::new(Expr::col("z")),
            list: vec![Value::Int(3), Value::Int(1), Value::Int(3)],
        });
        let b = QuerySpec::backward().rids([0]).filter(Expr::InList {
            expr: Box::new(Expr::col("z")),
            list: vec![Value::Int(1), Value::Int(3)],
        });
        assert_eq!(a.cache_key(), b.cache_key());
    }

    #[test]
    fn to_query_resolves_chains_and_rejects_unknown_views() {
        let idx = LineageIndex::Identity(4);
        let spec = QuerySpec::multi_view().rids([0]).then_through("other");
        let q = spec
            .to_query(|name| (name == "other").then_some(&idx))
            .unwrap();
        assert_eq!(q.direction(), Direction::MultiView);
        assert!(spec.to_query(|_| None).is_err());
    }

    #[test]
    fn relations_round_trip() {
        let rel = Relation::builder("t")
            .column("k", DataType::Int)
            .column("v", DataType::Float)
            .column("s", DataType::Str)
            .row(vec![
                Value::Int(1),
                Value::Float(2.5),
                Value::Str("a".into()),
            ])
            .row(vec![
                Value::Int(-7),
                Value::Float(0.0),
                Value::Str("".into()),
            ])
            .build()
            .unwrap();
        let back = relation_from_json(&relation_to_json(&rel)).unwrap();
        assert_eq!(back, rel);
    }

    #[test]
    fn results_round_trip_with_and_without_rows() {
        let bare = LineageResult {
            strategy: Strategy::EagerTrace,
            rids: vec![0, 5, 9],
            rows: None,
        };
        let back = result_from_json(&result_to_json(&bare)).unwrap();
        assert_eq!(back.strategy, Strategy::EagerTrace);
        assert_eq!(back.rids, vec![0, 5, 9]);
        assert!(back.rows.is_none());

        let with_rows = LineageResult {
            strategy: Strategy::CubeHit,
            rids: vec![],
            rows: Some(
                Relation::builder("answer")
                    .column("cnt", DataType::Int)
                    .row(vec![Value::Int(42)])
                    .build()
                    .unwrap(),
            ),
        };
        let back = result_from_json(&result_to_json(&with_rows)).unwrap();
        assert_eq!(back.rows.unwrap().value(0, 0), Value::Int(42));
    }

    #[test]
    fn decode_rejects_malformed_specs() {
        for bad in [
            "{}",
            r#"{"dir":"sideways","sel":"all"}"#,
            r#"{"dir":"backward","sel":[-1]}"#,
            r#"{"dir":"backward","sel":"all","strategy":"Magic"}"#,
            r#"{"dir":"backward","sel":"all","aggs":[{"fn":"median","as":"m"}]}"#,
        ] {
            assert!(QuerySpec::decode(bad).is_err(), "{bad} should fail");
        }
    }
}
