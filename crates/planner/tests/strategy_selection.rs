//! The acceptance scenarios for the cost-based strategy choice: across four
//! query shapes over one captured workload, the planner must pick all four
//! strategies — `CubeHit`, `PartitionPruned`, `EagerTrace`, and
//! `LazyRewrite` — and the `Explain` output must name the choice and its
//! cost. Forced-strategy runs additionally check that every feasible
//! strategy returns the same answer.

use smoke_core::ops::groupby::{group_by, GroupByOptions, GroupByResult};
use smoke_core::{AggExpr, AggPushdown, Expr};
use smoke_datagen::zipf::{zipf_table_binned, ZipfSpec};
use smoke_planner::{Direction, LineagePlanner, LineageQuery, RewriteInfo, Strategy};
use smoke_storage::Relation;

const BINS: usize = 4;

fn workload() -> (Relation, GroupByResult) {
    let table = zipf_table_binned(
        &ZipfSpec {
            theta: 1.0,
            rows: 2_000,
            groups: 20,
            seed: 7,
        },
        BINS,
    );
    let mut opts = GroupByOptions::inject();
    opts.workload.skipping_partition_by = vec!["v_bin".to_string()];
    opts.workload.agg_pushdown = Some(AggPushdown {
        partition_by: vec!["v_bin".to_string()],
        aggs: vec![AggExpr::count("cnt"), AggExpr::sum("v", "total")],
    });
    let captured = group_by(&table, &["z".to_string()], &[AggExpr::count("cnt")], &opts).unwrap();
    (table, captured)
}

fn planner<'a>(table: &'a Relation, captured: &'a GroupByResult) -> LineagePlanner<'a> {
    LineagePlanner::new(table, &captured.output)
        .lineage(captured.lineage.input(0))
        .artifacts(&captured.artifacts)
        .rewrite(RewriteInfo::new(vec!["z".to_string()], None))
        .stats(captured.stats)
}

fn normalized(rel: &Relation) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> = (0..rel.len())
        .map(|r| {
            rel.row_values(r)
                .iter()
                .map(|v| v.group_key())
                .collect::<Vec<_>>()
        })
        .collect();
    rows.sort();
    rows
}

#[test]
fn cube_matching_aggregate_selects_cube_hit() {
    let (table, captured) = workload();
    let p = planner(&table, &captured);
    let q = LineageQuery::backward().rids([0]).aggregate(
        &["v_bin"],
        vec![AggExpr::count("cnt"), AggExpr::sum("v", "total")],
    );

    let explain = p.explain(&q).unwrap();
    assert_eq!(explain.strategy, Strategy::CubeHit, "{}", explain.render());
    assert!(explain.cost.is_finite());
    assert!(
        explain.cost < explain.candidate_cost(Strategy::EagerTrace).unwrap(),
        "{}",
        explain.render()
    );
    assert!(explain.render().starts_with("strategy=CubeHit"));

    // The cube answer equals the eager trace + re-aggregation answer.
    let from_cube = p.execute(&q).unwrap();
    assert_eq!(from_cube.strategy, Strategy::CubeHit);
    let from_eager = p.execute_with(Strategy::EagerTrace, &q).unwrap();
    assert_eq!(
        normalized(from_cube.rows.as_ref().unwrap()),
        normalized(from_eager.rows.as_ref().unwrap())
    );
}

#[test]
fn partition_equality_filter_selects_partition_pruned() {
    let (table, captured) = workload();
    let p = planner(&table, &captured);
    // The COUNT-only aggregate does not match the cube, and the equality
    // filter on the partition attribute makes data skipping applicable.
    let q = LineageQuery::backward()
        .rids([0])
        .filter(Expr::col("v_bin").eq(Expr::lit(2)))
        .aggregate(&["v_bin"], vec![AggExpr::count("cnt")]);

    let explain = p.explain(&q).unwrap();
    assert_eq!(
        explain.strategy,
        Strategy::PartitionPruned,
        "{}",
        explain.render()
    );
    assert!(
        explain.cost < explain.candidate_cost(Strategy::EagerTrace).unwrap(),
        "pruning must be estimated cheaper than the full index scan: {}",
        explain.render()
    );
    let cube = explain
        .candidates
        .iter()
        .find(|c| c.strategy == Strategy::CubeHit)
        .unwrap();
    assert!(!cube.feasible);

    // Scanning one partition gives the same rids and aggregate as tracing
    // everything and filtering.
    let pruned = p.execute(&q).unwrap();
    assert_eq!(pruned.strategy, Strategy::PartitionPruned);
    let eager = p.execute_with(Strategy::EagerTrace, &q).unwrap();
    assert!(!pruned.rids.is_empty());
    assert_eq!(
        normalized(pruned.rows.as_ref().unwrap()),
        normalized(eager.rows.as_ref().unwrap())
    );
}

#[test]
fn partition_key_coerces_cross_type_equality_literals() {
    let (table, captured) = workload();
    let p = planner(&table, &captured);
    // `v_bin` is an Int column; a Float literal 2.0 compares equal to Int(2)
    // under predicate evaluation, so the pruned partition probe must use key
    // "2", not "2.0" — a mismatch would silently return an empty result.
    let q = LineageQuery::backward()
        .rids([0])
        .filter(Expr::col("v_bin").eq(Expr::lit(2.0)))
        .aggregate(&["v_bin"], vec![AggExpr::count("cnt")]);
    let explain = p.explain(&q).unwrap();
    assert_eq!(explain.strategy, Strategy::PartitionPruned);
    let pruned = p.execute(&q).unwrap();
    let eager = p.execute_with(Strategy::EagerTrace, &q).unwrap();
    assert!(!pruned.rids.is_empty());
    assert_eq!(pruned.rids, eager.rids);
    assert_eq!(
        normalized(pruned.rows.as_ref().unwrap()),
        normalized(eager.rows.as_ref().unwrap())
    );

    // A non-integral Float literal can never equal an Int partition value:
    // pruning is infeasible, and the fallback strategy correctly returns an
    // empty match set.
    let q = LineageQuery::backward()
        .rids([0])
        .filter(Expr::col("v_bin").eq(Expr::lit(2.5)));
    let explain = p.explain(&q).unwrap();
    assert_ne!(explain.strategy, Strategy::PartitionPruned);
    assert!(p.execute(&q).unwrap().rids.is_empty());
}

#[test]
fn batch_templates_with_selection_or_consumption_are_rejected() {
    let (table, captured) = workload();
    let p = planner(&table, &captured);
    let sets = vec![vec![0u32], vec![1]];
    assert!(p.execute_batch(&LineageQuery::backward(), &sets).is_ok());
    // A filter (or aggregate) on the template would be silently ignored —
    // reject it instead.
    let filtered = LineageQuery::backward().filter(Expr::col("v").gt(Expr::lit(50.0)));
    assert!(p.execute_batch(&filtered, &sets).is_err());
    let aggregated = LineageQuery::backward().aggregate(&["v_bin"], vec![AggExpr::count("cnt")]);
    assert!(p.execute_batch(&aggregated, &sets).is_err());
    // Same for a template carrying its own selection.
    let selected = LineageQuery::backward().rids([0]);
    assert!(p.execute_batch(&selected, &sets).is_err());
}

#[test]
fn plain_trace_selects_eager_over_lazy_on_cost() {
    let (table, captured) = workload();
    let p = planner(&table, &captured);
    let q = LineageQuery::backward().rids([3]);

    let explain = p.explain(&q).unwrap();
    assert_eq!(
        explain.strategy,
        Strategy::EagerTrace,
        "{}",
        explain.render()
    );
    // Lazy is feasible (rewrite info is registered) but must lose on cost:
    // a full 2000-row scan against one group's index entry.
    let lazy = explain.candidate_cost(Strategy::LazyRewrite).unwrap();
    assert!(lazy.is_finite());
    assert!(explain.cost < lazy, "{}", explain.render());
    assert_eq!(explain.selection_width, 1);
    assert!(explain.est_fanout > 1.0);
}

#[test]
fn parallelism_narrows_lazy_gap_without_reordering_strategies() {
    let (table, captured) = workload();

    // The dop discount applies only to LazyRewrite's full scan, so its cost
    // must shrink monotonically with dop while every other candidate stays
    // put — and at dop 8 the Cube < Pruned < Eager < Lazy ladder must hold
    // on the same query shapes that establish it sequentially.
    let q = LineageQuery::backward().rids([3]);
    let lazy_at = |dop: usize| {
        planner(&table, &captured)
            .with_dop(dop)
            .explain(&q)
            .unwrap()
            .candidate_cost(Strategy::LazyRewrite)
            .unwrap()
    };
    let (l1, l2, l8) = (lazy_at(1), lazy_at(2), lazy_at(8));
    assert!(l1 > l2 && l2 > l8, "lazy scan cost must fall with dop");
    assert!(
        l8 > l1 / 8.0,
        "the discount is sub-linear: 8 workers never model an 8x speedup"
    );

    let p8 = planner(&table, &captured).with_dop(8);
    let explain = p8.explain(&q).unwrap();
    assert_eq!(explain.dop, 8);
    let eager8 = explain.candidate_cost(Strategy::EagerTrace).unwrap();
    let eager1 = planner(&table, &captured)
        .explain(&q)
        .unwrap()
        .candidate_cost(Strategy::EagerTrace)
        .unwrap();
    assert_eq!(eager1, eager8, "trace-bound costs ignore dop");

    // On a narrow-fanout capture (2000 rows over 200 groups, ~10 edges per
    // trace) the Eager < Lazy ordering survives dop 8 by a wide margin: a
    // ten-edge index scan still crushes an 8-way-parallel 2000-row scan.
    let narrow_table = zipf_table_binned(
        &ZipfSpec {
            theta: 1.0,
            rows: 2_000,
            groups: 200,
            seed: 7,
        },
        BINS,
    );
    let narrow = group_by(
        &narrow_table,
        &["z".to_string()],
        &[AggExpr::count("cnt")],
        &GroupByOptions::inject(),
    )
    .unwrap();
    let np8 = LineagePlanner::new(&narrow_table, &narrow.output)
        .lineage(narrow.lineage.input(0))
        .rewrite(RewriteInfo::new(vec!["z".to_string()], None))
        .with_dop(8);
    let ne = np8.explain(&q).unwrap();
    assert_eq!(ne.strategy, Strategy::EagerTrace, "{}", ne.render());
    let (ne_eager, ne_lazy) = (
        ne.candidate_cost(Strategy::EagerTrace).unwrap(),
        ne.candidate_cost(Strategy::LazyRewrite).unwrap(),
    );
    assert!(
        ne_eager * 2.0 < ne_lazy,
        "narrow eager trace must keep a >2x margin at dop 8: {}",
        ne.render()
    );

    // Cube and Pruned keep winning their query shapes at dop 8.
    let cube_q = LineageQuery::backward().rids([0]).aggregate(
        &["v_bin"],
        vec![AggExpr::count("cnt"), AggExpr::sum("v", "total")],
    );
    assert_eq!(p8.explain(&cube_q).unwrap().strategy, Strategy::CubeHit);
    let pruned_q = LineageQuery::backward()
        .rids([0])
        .filter(Expr::col("v_bin").eq(Expr::lit(2)))
        .aggregate(&["v_bin"], vec![AggExpr::count("cnt")]);
    assert_eq!(
        p8.explain(&pruned_q).unwrap().strategy,
        Strategy::PartitionPruned
    );
}

#[test]
fn pruned_capture_falls_back_to_lazy_rewrite() {
    let (table, captured) = workload();
    // Simulate instrumentation pruning: no indexes or artifacts survive, only
    // the knowledge of the base query (its group-by key) remains.
    let p = LineagePlanner::new(&table, &captured.output)
        .rewrite(RewriteInfo::new(vec!["z".to_string()], None));
    let q = LineageQuery::backward().rids([0, 4]);

    let explain = p.explain(&q).unwrap();
    assert_eq!(
        explain.strategy,
        Strategy::LazyRewrite,
        "{}",
        explain.render()
    );
    let eager = explain
        .candidates
        .iter()
        .find(|c| c.strategy == Strategy::EagerTrace)
        .unwrap();
    assert!(!eager.feasible);
    assert!(explain.render().contains("EagerTrace=inf"));

    // The lazy result agrees rid-for-rid with the eager trace from the
    // fully-captured planner.
    let lazy = p.execute(&q).unwrap();
    let full = planner(&table, &captured);
    let eager = full.execute_with(Strategy::EagerTrace, &q).unwrap();
    assert_eq!(lazy.rids, eager.rids);
    assert!(!lazy.rids.is_empty());
}

#[test]
fn predicate_selection_resolves_to_matching_outputs() {
    let (table, captured) = workload();
    let p = planner(&table, &captured);
    // Select output groups by a predicate over the output relation.
    let q = LineageQuery::backward().matching(Expr::col("cnt").ge(Expr::lit(150)));
    let plan = p.plan(&q).unwrap();
    assert!(plan.explain.selection_width >= 1);
    let result = p.execute_plan(&plan, &q).unwrap();

    // Equivalent explicit-rid query.
    let wide: Vec<u32> = (0..captured.output.len())
        .filter(|&g| captured.output.column_by_name("cnt").unwrap().as_int()[g] >= 150)
        .map(|g| g as u32)
        .collect();
    assert_eq!(wide.len(), plan.explain.selection_width);
    let explicit = p.execute(&LineageQuery::backward().rids(wide)).unwrap();
    assert_eq!(result.rids, explicit.rids);
}

#[test]
fn infeasible_everything_is_a_planning_error() {
    let (table, captured) = workload();
    let bare = LineagePlanner::new(&table, &captured.output);
    let err = bare.plan(&LineageQuery::backward().rids([0]));
    assert!(err.is_err());

    // Forcing an infeasible strategy errors with the candidate's note.
    let p = planner(&table, &captured);
    let err = p.execute_with(Strategy::CubeHit, &LineageQuery::backward().rids([0]));
    assert!(err.is_err());
}

#[test]
fn multi_view_chain_matches_two_step_trace() {
    let (table, captured) = workload();
    // A second view over the same base table, grouped by the bin attribute.
    let v2 = group_by(
        &table,
        &["v_bin".to_string()],
        &[AggExpr::count("cnt")],
        &GroupByOptions::inject(),
    )
    .unwrap();
    let v2_forward = v2.lineage.input(0).forward();

    let p = planner(&table, &captured);
    let q = LineageQuery::multi_view()
        .rids([0])
        .then_through(v2_forward);
    let explain = p.explain(&q).unwrap();
    assert_eq!(explain.strategy, Strategy::EagerTrace);
    let chained = p.execute(&q).unwrap();

    // Two-step reference: backward to base, then forward into v2.
    let base_rids = p.execute(&LineageQuery::backward().rids([0])).unwrap().rids;
    let mut two_step = v2_forward.trace_set(&base_rids);
    two_step.sort_unstable();
    assert_eq!(chained.rids, two_step);
    assert!(!chained.rids.is_empty());

    // Consuming a multi-view trace is rejected at plan time, as is a chain on
    // a plain backward query.
    let bad = LineageQuery::multi_view()
        .rids([0])
        .then_through(v2_forward)
        .aggregate(&["v_bin"], vec![AggExpr::count("c")]);
    assert!(p.plan(&bad).is_err());
    let bad = LineageQuery::backward().rids([0]).then_through(v2_forward);
    assert!(p.plan(&bad).is_err());
    assert!(p.plan(&LineageQuery::multi_view().rids([0])).is_err());
}

#[test]
fn forward_direction_traces_base_to_output() {
    let (table, captured) = workload();
    let p = planner(&table, &captured);
    let q = LineageQuery::forward().rids([0, 1, 2]);
    let explain = p.explain(&q).unwrap();
    assert_eq!(explain.strategy, Strategy::EagerTrace);
    // Lazy cannot answer forward queries.
    assert!(explain.candidate_cost(Strategy::LazyRewrite) == Some(f64::INFINITY));

    let result = p.execute(&q).unwrap();
    assert_eq!(q.direction(), Direction::Forward);
    // Every base row belongs to exactly one group.
    assert!(!result.rids.is_empty() && result.rids.len() <= 3);
}
