//! The I/O term of the cost model over a genuinely paged base relation:
//! candidate page estimates must order `CubeHit` (zero) < `PartitionPruned`
//! < `EagerTrace` < `LazyRewrite` (full footprint), a warm buffer pool must
//! discount the charged cost without changing the page estimates, and the
//! estimates must surface through `Explain` and its wire encoding.

use std::sync::Arc;

use smoke_core::ops::groupby::{group_by, GroupByOptions, GroupByResult};
use smoke_core::{AggExpr, AggPushdown, Expr};
use smoke_datagen::zipf::{zipf_table_binned, ZipfSpec};
use smoke_pager::{BufferPool, ReplacementPolicy, SegmentStore};
use smoke_planner::{IoModel, LineagePlanner, LineageQuery, RewriteInfo, Strategy};
use smoke_storage::{PagedRelation, Relation, ROWS_PER_PAGE};

const BINS: usize = 4;

/// 200k rows over 2k groups: ~100 edges per trace against ~196 pages per
/// column, far from Yao saturation, so page estimates stay discriminative.
fn workload() -> (Relation, GroupByResult) {
    let table = zipf_table_binned(
        &ZipfSpec {
            theta: 1.0,
            rows: 200_000,
            groups: 2_000,
            seed: 11,
        },
        BINS,
    );
    let mut opts = GroupByOptions::inject();
    opts.workload.skipping_partition_by = vec!["v_bin".to_string()];
    opts.workload.agg_pushdown = Some(AggPushdown {
        partition_by: vec!["v_bin".to_string()],
        aggs: vec![AggExpr::count("cnt"), AggExpr::sum("v", "total")],
    });
    let captured = group_by(&table, &["z".to_string()], &[AggExpr::count("cnt")], &opts).unwrap();
    (table, captured)
}

fn spill(table: &Relation, budget_pages: usize) -> PagedRelation {
    let pool = Arc::new(BufferPool::new(
        SegmentStore::in_memory(),
        budget_pages,
        ReplacementPolicy::Sieve,
    ));
    PagedRelation::spill(table, &pool).unwrap()
}

fn planner<'a>(
    table: &'a Relation,
    captured: &'a GroupByResult,
    io: IoModel,
) -> LineagePlanner<'a> {
    LineagePlanner::new(table, &captured.output)
        .lineage(captured.lineage.input(0))
        .artifacts(&captured.artifacts)
        .rewrite(RewriteInfo::new(vec!["z".to_string()], None))
        .stats(captured.stats)
        .with_io(io)
}

#[test]
fn page_estimates_order_the_strategies() {
    let (table, captured) = workload();
    let paged = spill(&table, 8);
    let io = IoModel::from_paged(&paged);
    assert_eq!(io.columns, 4, "id, z, v, v_bin are all numeric");
    assert_eq!(
        io.pages_per_column as usize,
        table.len().div_ceil(ROWS_PER_PAGE)
    );
    let p = planner(&table, &captured, io);

    // The crossfilter query: partition-equality filter plus an aggregate.
    let q = LineageQuery::backward()
        .rids([0])
        .filter(Expr::col("v_bin").eq(Expr::lit(2)))
        .aggregate(&["v_bin"], vec![AggExpr::count("cnt")]);
    let explain = p.explain(&q).unwrap();
    assert!(explain.residency.is_some());

    let pruned = explain.candidate_pages(Strategy::PartitionPruned).unwrap();
    let eager = explain.candidate_pages(Strategy::EagerTrace).unwrap();
    let lazy = explain.candidate_pages(Strategy::LazyRewrite).unwrap();
    assert!(pruned > 0.0, "{}", explain.render());
    assert!(
        pruned < eager,
        "pruning must touch strictly fewer pages: {}",
        explain.render()
    );
    assert!(eager < lazy, "{}", explain.render());
    assert_eq!(lazy, io.total_pages(), "a full scan pays the footprint");
    assert_eq!(explain.strategy, Strategy::PartitionPruned);
    assert!(explain.render().contains("pg"), "{}", explain.render());

    // The cube-matching aggregate touches no base pages at all.
    let cube_q = LineageQuery::backward().rids([0]).aggregate(
        &["v_bin"],
        vec![AggExpr::count("cnt"), AggExpr::sum("v", "total")],
    );
    let cube_explain = p.explain(&cube_q).unwrap();
    assert_eq!(cube_explain.strategy, Strategy::CubeHit);
    assert_eq!(cube_explain.candidate_pages(Strategy::CubeHit), Some(0.0));
    assert!(cube_explain.candidate_pages(Strategy::EagerTrace).unwrap() > 0.0);
}

#[test]
fn pure_rid_traces_charge_no_base_pages() {
    let (table, captured) = workload();
    let paged = spill(&table, 8);
    let p = planner(&table, &captured, IoModel::from_paged(&paged));

    // No filter, no aggregate: the answer comes straight out of the index.
    let explain = p.explain(&LineageQuery::backward().rids([0])).unwrap();
    assert_eq!(explain.candidate_pages(Strategy::EagerTrace), Some(0.0));
    // Forward traces land in the resident view output, not the paged base.
    let fwd = p.explain(&LineageQuery::forward().rids([0, 1])).unwrap();
    assert_eq!(fwd.candidate_pages(Strategy::EagerTrace), Some(0.0));
}

#[test]
fn warm_pool_discounts_cost_but_not_pages() {
    let (table, captured) = workload();
    let paged = spill(&table, 64);
    let cold = IoModel::from_paged(&paged);
    assert_eq!(cold.residency, 0.0, "spill bypasses the pool");

    // Fault in a working set, then re-derive the model: residency rises,
    // estimated pages stay put, and the charged cost drops.
    let rids: Vec<u32> = (0..40).map(|i| i * ROWS_PER_PAGE as u32).collect();
    paged.gather(&rids, "warmup").unwrap();
    let warm = IoModel::from_paged(&paged);
    assert!(warm.residency > 0.0, "gather populates the pool");

    let q = LineageQuery::backward()
        .rids([0])
        .filter(Expr::col("v_bin").eq(Expr::lit(2)))
        .aggregate(&["v_bin"], vec![AggExpr::count("cnt")]);
    let cold_explain = planner(&table, &captured, cold).explain(&q).unwrap();
    let warm_explain = planner(&table, &captured, warm).explain(&q).unwrap();
    assert_eq!(
        cold_explain.candidate_pages(Strategy::EagerTrace),
        warm_explain.candidate_pages(Strategy::EagerTrace)
    );
    assert!(
        warm_explain.candidate_cost(Strategy::EagerTrace).unwrap()
            < cold_explain.candidate_cost(Strategy::EagerTrace).unwrap(),
        "resident pages must discount the charge"
    );
}

#[test]
fn prefetching_pool_cheapens_only_the_full_scan() {
    let (table, captured) = workload();
    let plain = spill(&table, 8);
    let pf_pool = Arc::new(BufferPool::with_prefetch(
        SegmentStore::in_memory(),
        8,
        ReplacementPolicy::Sieve,
        2,
    ));
    let hinted = PagedRelation::spill(&table, &pf_pool).unwrap();

    let io_plain = IoModel::from_paged(&plain);
    let io_hinted = IoModel::from_paged(&hinted);
    assert!(!io_plain.prefetch);
    assert!(io_hinted.prefetch, "from_paged reads the pool's prefetcher");

    let q = LineageQuery::backward()
        .rids([0])
        .filter(Expr::col("v_bin").eq(Expr::lit(2)))
        .aggregate(&["v_bin"], vec![AggExpr::count("cnt")]);
    let cold = planner(&table, &captured, io_plain).explain(&q).unwrap();
    let seq = planner(&table, &captured, io_hinted).explain(&q).unwrap();

    // LazyRewrite is the only sequential-sweep strategy: its charge drops at
    // the batched rate while its page estimate and every random-read
    // candidate stay identical.
    assert!(
        seq.candidate_cost(Strategy::LazyRewrite).unwrap()
            < cold.candidate_cost(Strategy::LazyRewrite).unwrap(),
        "{}",
        seq.render()
    );
    assert_eq!(
        seq.candidate_pages(Strategy::LazyRewrite),
        cold.candidate_pages(Strategy::LazyRewrite)
    );
    assert_eq!(
        seq.candidate_cost(Strategy::EagerTrace),
        cold.candidate_cost(Strategy::EagerTrace),
        "trace-driven random reads keep the demand rate"
    );
    assert_eq!(
        seq.candidate_cost(Strategy::PartitionPruned),
        cold.candidate_cost(Strategy::PartitionPruned)
    );

    assert_eq!(seq.prefetch, Some(true));
    assert!(seq.render().contains("prefetch=on"), "{}", seq.render());
    assert!(cold.render().contains("prefetch=off"), "{}", cold.render());

    let json = smoke_planner::wire::explain_to_json(&seq);
    assert_eq!(json.get("prefetch").unwrap().as_bool(), Some(true));
}

#[test]
fn explain_wire_encoding_carries_pages_and_residency() {
    let (table, captured) = workload();
    let paged = spill(&table, 8);
    let p = planner(&table, &captured, IoModel::from_paged(&paged));
    let q = LineageQuery::backward()
        .rids([0])
        .filter(Expr::col("v_bin").eq(Expr::lit(2)))
        .aggregate(&["v_bin"], vec![AggExpr::count("cnt")]);
    let explain = p.explain(&q).unwrap();

    let json = smoke_planner::wire::explain_to_json(&explain);
    assert!(json.get("residency").unwrap().as_f64().is_some());
    let candidates = json.get("candidates").unwrap().as_arr().unwrap();
    let pages_of = |name: &str| {
        candidates
            .iter()
            .find(|c| c.get("strategy").unwrap().as_str() == Some(name))
            .and_then(|c| c.get("pages"))
            .and_then(|p| p.as_f64())
            .unwrap()
    };
    assert!(pages_of("PartitionPruned") < pages_of("EagerTrace"));
    assert_eq!(pages_of("CubeHit"), 0.0);

    // Without an I/O model the same keys exist but report no paged base.
    let in_ram = LineagePlanner::new(&table, &captured.output)
        .lineage(captured.lineage.input(0))
        .explain(&LineageQuery::backward().rids([0]))
        .unwrap();
    let json = smoke_planner::wire::explain_to_json(&in_ram);
    assert!(json.get("residency").unwrap().is_null());
}

#[test]
fn io_model_reads_pool_residency_through_the_relation() {
    // Direct plumbing check: PagedRelation::resident_fraction is the pool's
    // residency over exactly this relation's pages.
    let (table, _) = workload();
    let pool = Arc::new(BufferPool::new(
        SegmentStore::in_memory(),
        8,
        ReplacementPolicy::Lru,
    ));
    let paged = PagedRelation::spill(&table, &pool).unwrap();
    assert_eq!(paged.resident_fraction(), 0.0);
    paged.gather(&[0, 1, 2], "probe").unwrap();
    let frac = paged.resident_fraction();
    assert!(frac > 0.0 && frac < 1.0);
    // An unrelated pool page does not count toward this relation.
    let extra = pool.allocate(1);
    pool.pin(extra).unwrap();
    assert_eq!(paged.resident_fraction(), frac);
}
