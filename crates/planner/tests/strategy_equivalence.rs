//! Property-based equivalence between the planner's strategies: on random
//! group-by/select queries, `LazyRewrite` and `EagerTrace` backward lineage
//! must agree rid-for-rid, and a lineage-consuming aggregate evaluated both
//! ways must produce the same relation.

use proptest::prelude::*;
use smoke_core::{AggExpr, CaptureMode, Executor, Expr, PlanBuilder};
use smoke_planner::{LineagePlanner, LineageQuery, RewriteInfo, Strategy};
use smoke_storage::{DataType, Database, Relation, Rid, Value};

/// Builds `t(z, v)` from generated `(z, v)` pairs (`v` stored as a float).
fn table_from(rows: &[(i64, i64)]) -> Relation {
    let mut b = Relation::builder("t")
        .column("z", DataType::Int)
        .column("v", DataType::Float);
    for &(z, v) in rows {
        b = b.row(vec![Value::Int(z), Value::Float(v as f64)]);
    }
    b.build().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn lazy_and_eager_backward_lineage_agree_rid_for_rid(
        rows in prop::collection::vec((0i64..6, 0i64..100), 1..60),
        cut in 1i64..110,
        picks in prop::collection::vec(0u32..8, 0..8),
    ) {
        let table = table_from(&rows);
        let mut db = Database::new();
        db.register(table.clone()).unwrap();

        // Base query: SELECT z, COUNT(*), SUM(v) FROM t WHERE v < cut GROUP BY z.
        let plan = PlanBuilder::scan("t")
            .select(Expr::col("v").lt(Expr::lit(cut as f64)))
            .group_by(&["z"], vec![AggExpr::count("cnt"), AggExpr::sum("v", "total")])
            .build();
        let out = Executor::new(CaptureMode::Inject).execute(&plan, &db).unwrap();
        let rewrite = RewriteInfo::from_plan(&plan).unwrap();
        let planner = LineagePlanner::from_query_output(&out, &table, "t").rewrite(rewrite);

        let rids: Vec<Rid> = picks;
        let q = LineageQuery::backward().rids(rids.clone());
        let eager = planner.execute_with(Strategy::EagerTrace, &q).unwrap();
        let lazy = planner.execute_with(Strategy::LazyRewrite, &q).unwrap();
        prop_assert_eq!(&eager.rids, &lazy.rids, "backward lineage must agree rid-for-rid");

        // Lineage-consuming aggregate: re-group the traced rows by z.
        let qa = LineageQuery::backward().rids(rids).aggregate(
            &["z"],
            vec![AggExpr::count("cnt"), AggExpr::sum("v", "total")],
        );
        let eager_rows = planner
            .execute_with(Strategy::EagerTrace, &qa)
            .unwrap()
            .rows
            .unwrap();
        let lazy_rows = planner
            .execute_with(Strategy::LazyRewrite, &qa)
            .unwrap()
            .rows
            .unwrap();
        prop_assert_eq!(normalized(&eager_rows), normalized(&lazy_rows));
    }

    #[test]
    fn lazy_and_eager_agree_with_residual_filters(
        rows in prop::collection::vec((0i64..4, 0i64..50), 1..40),
        filter_cut in 1i64..60,
        pick in 0u32..4,
    ) {
        let table = table_from(&rows);
        let mut db = Database::new();
        db.register(table.clone()).unwrap();
        let plan = PlanBuilder::scan("t")
            .group_by(&["z"], vec![AggExpr::count("cnt")])
            .build();
        let out = Executor::new(CaptureMode::Inject).execute(&plan, &db).unwrap();
        let planner = LineagePlanner::from_query_output(&out, &table, "t")
            .rewrite(RewriteInfo::from_plan(&plan).unwrap());

        // Filter-only consumption: the traced rid set restricted by v > cut.
        let q = LineageQuery::backward()
            .rids([pick])
            .filter(Expr::col("v").gt(Expr::lit(filter_cut as f64)));
        let eager = planner.execute_with(Strategy::EagerTrace, &q).unwrap();
        let lazy = planner.execute_with(Strategy::LazyRewrite, &q).unwrap();
        prop_assert_eq!(&eager.rids, &lazy.rids);
        for &rid in &eager.rids {
            let v = table.value(rid as usize, 1);
            prop_assert!(matches!(v, Value::Float(f) if f > filter_cut as f64));
        }
    }

    #[test]
    fn batch_tracing_matches_single_set_traces(
        rows in prop::collection::vec((0i64..8, 0i64..100), 1..80),
        sets in prop::collection::vec(prop::collection::vec(0u32..10, 0..5), 0..12),
    ) {
        let table = table_from(&rows);
        let mut db = Database::new();
        db.register(table.clone()).unwrap();
        let plan = PlanBuilder::scan("t")
            .group_by(&["z"], vec![AggExpr::count("cnt")])
            .build();
        let out = Executor::new(CaptureMode::Inject).execute(&plan, &db).unwrap();
        let planner = LineagePlanner::from_query_output(&out, &table, "t");

        let q = LineageQuery::backward();
        let batched = planner.execute_batch(&q, &sets).unwrap();
        prop_assert_eq!(batched.len(), sets.len());
        for (set, batch_result) in sets.iter().zip(&batched) {
            let single = planner
                .execute(&LineageQuery::backward().rids(set.clone()))
                .unwrap();
            prop_assert_eq!(&single.rids, batch_result);
        }
    }
}

fn normalized(rel: &Relation) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> = (0..rel.len())
        .map(|r| {
            rel.row_values(r)
                .iter()
                .map(|v| v.group_key())
                .collect::<Vec<_>>()
        })
        .collect();
    rows.sort();
    rows
}
