// Fixture: an unsafe block with no justification.
pub fn first(v: &[u32]) -> u32 {
    unsafe { *v.as_ptr() }
}
