// Fixture: the same unsafe block, justified.
pub fn first(v: &[u32]) -> u32 {
    // SAFETY: every caller checks `v` is non-empty; reading index 0 of a
    // live, aligned slice is defined.
    unsafe { *v.as_ptr() }
}
