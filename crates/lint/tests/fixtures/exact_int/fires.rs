// Fixture: a float cast in the JSON layer outside the float codec — counts
// above 2^53 would render rounded.
pub fn render_count(n: u64) -> String {
    let approx = n as f64;
    format!("{approx}")
}
