// Fixture: integers render exactly; float conversion lives only in the
// explicit float codec (`as_f64` is on the allowlist).
pub fn render_count(n: u64) -> String {
    format!("{n}")
}

pub fn as_f64(n: u64) -> f64 {
    n as f64
}
