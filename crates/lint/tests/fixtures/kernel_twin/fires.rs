// Fixture: a whole-column kernel that forks its `_range` twin's logic
// instead of delegating — the two can now drift apart.
pub fn sum_range(col: &[i64], lo: usize, hi: usize) -> i64 {
    col[lo..hi].iter().sum()
}

pub fn sum(col: &[i64]) -> i64 {
    let mut acc = 0;
    for v in col {
        acc += v;
    }
    acc
}
