// Fixture: the whole-column kernel is a pure `0..len` delegation.
pub fn sum_range(col: &[i64], lo: usize, hi: usize) -> i64 {
    col[lo..hi].iter().sum()
}

pub fn sum(col: &[i64]) -> i64 {
    sum_range(col, 0, col.len())
}
