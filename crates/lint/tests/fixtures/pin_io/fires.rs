// Fixture: a pinned-page guard held across a blocking socket write.
use std::io::Write;
use std::net::TcpStream;

pub fn respond(pool: &smoke_pager::BufferPool, stream: &mut TcpStream) -> std::io::Result<()> {
    let page = pool.pin(smoke_pager::PageId(0)).map_err(std::io::Error::other)?;
    stream.write_all(page.bytes())?;
    Ok(())
}
