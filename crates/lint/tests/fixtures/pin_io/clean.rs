// Fixture: the page is copied out and the pin released before the write.
use std::io::Write;
use std::net::TcpStream;

pub fn respond(pool: &smoke_pager::BufferPool, stream: &mut TcpStream) -> std::io::Result<()> {
    let copy = {
        let page = pool.pin(smoke_pager::PageId(0)).map_err(std::io::Error::other)?;
        page.bytes().to_vec()
    };
    stream.write_all(&copy)?;
    Ok(())
}

pub fn respond_with_drop(
    pool: &smoke_pager::BufferPool,
    stream: &mut TcpStream,
) -> std::io::Result<()> {
    let page = pool.pin(smoke_pager::PageId(0)).map_err(std::io::Error::other)?;
    let copy = page.bytes().to_vec();
    drop(page);
    stream.write_all(&copy)?;
    Ok(())
}
