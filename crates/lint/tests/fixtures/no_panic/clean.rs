// Fixture: the same decode written with typed fallibility; test code may
// still unwrap freely.
pub fn decode(frame: &[u8]) -> Option<(u8, u8)> {
    match frame {
        [tag, .., len] if *tag <= 7 => Some((*tag, *len)),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_exempt() {
        assert_eq!(super::decode(&[1, 2]).unwrap(), (1, 2));
    }
}
