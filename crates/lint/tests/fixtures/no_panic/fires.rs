// Fixture: request-path code that panics on malformed input.
pub fn decode(frame: &[u8]) -> (u8, u8) {
    let tag = frame[0];
    if tag > 7 {
        panic!("bad tag");
    }
    let len = frame.last().copied().unwrap();
    (tag, len)
}
