// Fixture: the guard is scoped to a block, so the write happens lock-free.
use std::io::Write;
use std::net::TcpStream;
use std::sync::Mutex;

pub fn respond(stats: &Mutex<u64>, stream: &mut TcpStream) -> std::io::Result<()> {
    {
        let mut served = stats.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        *served += 1;
    }
    stream.write_all(b"ok")?;
    Ok(())
}

pub fn respond_with_drop(stats: &Mutex<u64>, stream: &mut TcpStream) -> std::io::Result<()> {
    let mut served = stats.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    *served += 1;
    drop(served);
    stream.write_all(b"ok")?;
    Ok(())
}
