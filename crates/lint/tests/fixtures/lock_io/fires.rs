// Fixture: a stats-mutex guard held across a blocking socket write.
use std::io::Write;
use std::net::TcpStream;
use std::sync::Mutex;

pub fn respond(stats: &Mutex<u64>, stream: &mut TcpStream) -> std::io::Result<()> {
    let mut served = stats.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
    *served += 1;
    stream.write_all(b"ok")?;
    Ok(())
}
