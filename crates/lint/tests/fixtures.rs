//! Fixture self-tests: every rule has a firing and a clean fixture, asserted
//! by rule ID and span. The fixture sources live under `tests/fixtures/` —
//! outside `src/`, so the workspace walk never lints them.

use smoke_lint::check_source;

fn fixture(rule_dir: &str, which: &str) -> String {
    let path = format!(
        "{}/tests/fixtures/{}/{}.rs",
        env!("CARGO_MANIFEST_DIR"),
        rule_dir,
        which
    );
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"))
}

/// Asserts the fixture fires exactly `expected` = `(rule, line, snippet)`
/// triples, where `snippet` must start at the reported column of that line —
/// i.e. the span points at the offending token, not just the right line.
fn assert_fires(rel_path: &str, src: &str, expected: &[(&str, u32, &str)]) {
    let result = check_source(rel_path, src);
    let lines: Vec<&str> = src.lines().collect();
    assert_eq!(
        result.violations.len(),
        expected.len(),
        "violation count mismatch for {rel_path}: {:#?}",
        result.violations
    );
    for (v, (rule, line, snippet)) in result.violations.iter().zip(expected) {
        assert_eq!(v.rule, *rule, "rule mismatch: {v}");
        assert_eq!(v.line, *line, "line mismatch: {v}");
        let text = lines[(v.line - 1) as usize];
        let at_col = &text[(v.col - 1) as usize..];
        assert!(
            at_col.starts_with(snippet),
            "span {v} does not point at `{snippet}`; line is `{text}`, col text `{at_col}`"
        );
    }
}

fn assert_clean(rel_path: &str, src: &str) {
    let result = check_source(rel_path, src);
    assert!(
        result.violations.is_empty(),
        "expected clean, got {:#?}",
        result.violations
    );
    assert_eq!(
        result.suppressed, 0,
        "clean fixtures must not rely on pragmas"
    );
}

#[test]
fn no_panic_on_request_path_fires() {
    let src = fixture("no_panic", "fires");
    assert_fires(
        "crates/server/src/fixture.rs",
        &src,
        &[
            ("no-panic-on-request-path", 3, "0]"),
            ("no-panic-on-request-path", 5, "panic!"),
            ("no-panic-on-request-path", 7, "unwrap()"),
        ],
    );
}

#[test]
fn no_panic_on_request_path_clean() {
    let src = fixture("no_panic", "clean");
    assert_clean("crates/server/src/fixture.rs", &src);
}

#[test]
fn no_panic_rule_also_covers_planner_decode_layers() {
    let src = fixture("no_panic", "fires");
    for path in ["crates/planner/src/json.rs", "crates/planner/src/wire.rs"] {
        // json.rs additionally runs exact-int-json, but this fixture has no
        // floats, so the same three violations fire.
        let r = check_source(path, &src);
        assert_eq!(r.violations.len(), 3, "{path}: {:#?}", r.violations);
    }
    // ...and NOT other planner files.
    let r = check_source("crates/planner/src/cost.rs", &src);
    assert!(r.violations.is_empty());
}

#[test]
fn unsafe_needs_safety_comment_fires() {
    let src = fixture("unsafe_comment", "fires");
    assert_fires(
        "crates/storage/src/fixture.rs",
        &src,
        &[("unsafe-needs-safety-comment", 3, "unsafe")],
    );
}

#[test]
fn unsafe_needs_safety_comment_clean() {
    let src = fixture("unsafe_comment", "clean");
    assert_clean("crates/storage/src/fixture.rs", &src);
}

#[test]
fn no_lock_across_io_fires() {
    let src = fixture("lock_io", "fires");
    assert_fires(
        "crates/server/src/fixture.rs",
        &src,
        &[("no-lock-across-io", 9, "write_all")],
    );
}

#[test]
fn no_lock_across_io_clean() {
    let src = fixture("lock_io", "clean");
    assert_clean("crates/server/src/fixture.rs", &src);
}

#[test]
fn pin_guard_no_io_fires() {
    let src = fixture("pin_io", "fires");
    assert_fires(
        "crates/server/src/fixture.rs",
        &src,
        &[("pin-guard-no-io", 7, "write_all")],
    );
}

#[test]
fn pin_guard_no_io_clean() {
    let src = fixture("pin_io", "clean");
    assert_clean("crates/server/src/fixture.rs", &src);
}

#[test]
fn pin_guard_rule_skips_the_pool_internals() {
    // The pool's own internals pin pages around store I/O by design; the
    // rule polices pin *consumers* — sessions, the prefetcher, the paged
    // operators — not the mechanism itself.
    let src = fixture("pin_io", "fires");
    assert_clean("crates/pager/src/pool.rs", &src);
    assert_clean("crates/pager/src/store.rs", &src);
    assert_clean("crates/storage/src/paged.rs", &src);
}

#[test]
fn pin_guard_rule_covers_prefetcher_and_paged_operators() {
    let src = fixture("pin_io", "fires");
    for path in [
        "crates/pager/src/prefetch.rs",
        "crates/core/src/paged/mod.rs",
        "crates/core/src/paged/grace.rs",
    ] {
        let r = check_source(path, &src);
        assert!(
            r.violations.iter().any(|v| v.rule == "pin-guard-no-io"),
            "{path} must be in pin-guard scope: {:#?}",
            r.violations
        );
    }
}

#[test]
fn no_panic_rule_covers_the_grace_join_path() {
    let src = fixture("no_panic", "fires");
    let r = check_source("crates/core/src/paged/grace.rs", &src);
    assert_eq!(r.violations.len(), 3, "{:#?}", r.violations);
    // ...but not the rest of the core crate.
    let r = check_source("crates/core/src/ops/join.rs", &src);
    assert!(r.violations.is_empty());
}

#[test]
fn kernel_range_twin_fires() {
    let src = fixture("kernel_twin", "fires");
    assert_fires(
        "crates/storage/src/kernels.rs",
        &src,
        &[("kernel-range-twin", 7, "{")],
    );
}

#[test]
fn kernel_range_twin_clean() {
    let src = fixture("kernel_twin", "clean");
    assert_clean("crates/storage/src/kernels.rs", &src);
}

#[test]
fn kernel_twin_rule_only_applies_to_kernels_rs() {
    let src = fixture("kernel_twin", "fires");
    assert_clean("crates/storage/src/column.rs", &src);
}

#[test]
fn exact_int_json_fires() {
    let src = fixture("exact_int", "fires");
    assert_fires(
        "crates/planner/src/json.rs",
        &src,
        &[("exact-int-json", 4, "f64")],
    );
}

#[test]
fn exact_int_json_clean() {
    let src = fixture("exact_int", "clean");
    assert_clean("crates/planner/src/json.rs", &src);
}

#[test]
fn pragma_suppresses_exactly_one_rule_on_one_line() {
    let mut src = fixture("no_panic", "fires");
    src = src.replace(
        "    let tag = frame[0];",
        "    // lint:allow(no-panic-on-request-path)\n    let tag = frame[0];",
    );
    let r = check_source("crates/server/src/fixture.rs", &src);
    assert_eq!(r.suppressed, 1);
    assert_eq!(r.violations.len(), 2, "{:#?}", r.violations);
}
