//! A hand-rolled Rust lexer producing a flat token stream with spans.
//!
//! The workspace vendors its few dependencies and deliberately excludes
//! `syn`, so the lint layer lexes Rust source itself — the same idiom as the
//! hand-rolled JSON layer in `smoke_planner::json`. The lexer is not a
//! parser: it produces identifiers, literals, comments, and punctuation with
//! line/column spans, which is exactly the granularity the rule engine's
//! token-pattern heuristics need. It understands everything that changes
//! token boundaries — nested block comments, raw strings (`r#"..."#`), byte
//! and char literals vs. lifetimes, numeric literals with suffixes — and
//! nothing that does not (no precedence, no grammar).

/// The coarse classification of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `unsafe`, `unwrap`, ...).
    Ident,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// An integer literal (`0`, `0x1f`, `1_000u64`).
    Int,
    /// A float literal (`1.5`, `2f64`, `1e3`).
    Float,
    /// A string, raw-string, byte-string, char, or byte literal.
    Str,
    /// A `// ...` comment (text includes the slashes), doc comments included.
    LineComment,
    /// A `/* ... */` comment (nesting handled), doc comments included.
    BlockComment,
    /// A single punctuation character (`.`, `(`, `[`, `!`, ...). Multi-char
    /// operators arrive as consecutive tokens; the rules never need them
    /// joined.
    Punct,
}

/// One lexed token with its source span.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification.
    pub kind: TokenKind,
    /// The exact source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
    /// Whether the token sits inside a `#[test]` / `#[cfg(test)]`-gated
    /// item. Filled in by [`mark_test_regions`]; `false` straight out of
    /// the lexer.
    pub in_test: bool,
}

impl Token {
    /// Whether this token is a comment (line or block).
    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokenKind::LineComment | TokenKind::BlockComment)
    }

    /// Whether this is an identifier with exactly this text.
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == text
    }

    /// Whether this is a punctuation token with exactly this character.
    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokenKind::Punct
            && self.text.len() == ch.len_utf8()
            && self.text.starts_with(ch)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

struct Lexer<'a> {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    src: &'a str,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Self {
        Lexer {
            chars: src.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            src,
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn text_since(&self, start: usize) -> String {
        self.chars[start..self.pos].iter().collect()
    }

    /// Consumes a `"..."` string body (the opening quote is already
    /// consumed), honoring `\"` and `\\` escapes. Unterminated strings end
    /// at EOF — the lexer is best-effort, not a validator.
    fn eat_string_body(&mut self) {
        while let Some(c) = self.bump() {
            match c {
                '\\' => {
                    self.bump();
                }
                '"' => return,
                _ => {}
            }
        }
    }

    /// Consumes a raw string `r"..."` / `r#"..."#` body starting at the
    /// first `#` or `"` (the `r`/`br` prefix is already consumed).
    fn eat_raw_string_body(&mut self) {
        let mut hashes = 0usize;
        while self.peek() == Some('#') {
            self.bump();
            hashes += 1;
        }
        if self.peek() == Some('"') {
            self.bump();
        } else {
            return; // not actually a raw string; treated as lexed-so-far
        }
        loop {
            match self.bump() {
                None => return,
                Some('"') => {
                    let mut seen = 0usize;
                    while seen < hashes && self.peek() == Some('#') {
                        self.bump();
                        seen += 1;
                    }
                    if seen == hashes {
                        return;
                    }
                }
                Some(_) => {}
            }
        }
    }

    /// Consumes a numeric literal (first digit already consumed); returns
    /// whether it is a float. Handles `_` separators, hex/oct/bin prefixes,
    /// type suffixes, `1.5`, `1e-3`, and stops before `..` ranges and
    /// method calls like `1.max(2)`.
    fn eat_number(&mut self) -> bool {
        // `0x`/`0o`/`0b` literals are always integers; their digits may
        // include `e` and `f`, which would otherwise look like exponent and
        // float-suffix markers.
        let radix_prefix = self.chars.get(self.pos.wrapping_sub(1)) == Some(&'0')
            && matches!(self.peek(), Some('x' | 'o' | 'b'));
        let mut is_float = false;
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_alphanumeric() || c == '_' => {
                    if (c == 'e' || c == 'E') && !radix_prefix {
                        // Lookahead for an exponent sign so `1e-3` stays one
                        // token.
                        self.bump();
                        if matches!(self.peek(), Some('+') | Some('-'))
                            && self.peek_at(1).is_some_and(|d| d.is_ascii_digit())
                        {
                            is_float = true;
                            self.bump();
                        }
                        continue;
                    }
                    if c == 'f' && !radix_prefix {
                        // `2f64` style suffix marks a float.
                        is_float = true;
                    }
                    self.bump();
                }
                // `0..len` is a range, `1.max()` a method call; only a
                // digit after the dot continues the literal.
                Some('.') if self.peek_at(1).is_some_and(|d| d.is_ascii_digit()) => {
                    is_float = true;
                    self.bump();
                }
                _ => return is_float,
            }
        }
    }
}

/// Lexes Rust source into a token stream. Never fails: malformed input
/// degrades to punctuation tokens, which at worst makes a heuristic rule
/// miss — it never aborts the lint run.
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer::new(src);
    // Pre-size on a rough tokens-per-byte estimate to avoid realloc churn.
    let mut out = Vec::with_capacity(lx.src.len() / 6);
    while let Some(c) = lx.peek() {
        let (line, col, start) = (lx.line, lx.col, lx.pos);
        if c.is_whitespace() {
            lx.bump();
            continue;
        }
        let kind = if c == '/' && lx.peek_at(1) == Some('/') {
            while let Some(n) = lx.peek() {
                if n == '\n' {
                    break;
                }
                lx.bump();
            }
            TokenKind::LineComment
        } else if c == '/' && lx.peek_at(1) == Some('*') {
            lx.bump();
            lx.bump();
            let mut depth = 1usize;
            while depth > 0 {
                match lx.bump() {
                    None => break,
                    Some('/') if lx.peek() == Some('*') => {
                        lx.bump();
                        depth += 1;
                    }
                    Some('*') if lx.peek() == Some('/') => {
                        lx.bump();
                        depth -= 1;
                    }
                    Some(_) => {}
                }
            }
            TokenKind::BlockComment
        } else if is_ident_start(c) {
            while lx.peek().is_some_and(is_ident_continue) {
                lx.bump();
            }
            let ident = lx.text_since(start);
            // Raw-string / byte-string / byte-char prefixes.
            match (ident.as_str(), lx.peek()) {
                ("r" | "br" | "rb", Some('"' | '#')) => {
                    lx.eat_raw_string_body();
                    TokenKind::Str
                }
                ("b", Some('"')) => {
                    lx.bump();
                    lx.eat_string_body();
                    TokenKind::Str
                }
                ("b", Some('\'')) => {
                    lx.bump();
                    if lx.peek() == Some('\\') {
                        lx.bump();
                    }
                    lx.bump();
                    if lx.peek() == Some('\'') {
                        lx.bump();
                    }
                    TokenKind::Str
                }
                _ => TokenKind::Ident,
            }
        } else if c.is_ascii_digit() {
            lx.bump();
            if lx.eat_number() {
                TokenKind::Float
            } else {
                TokenKind::Int
            }
        } else if c == '"' {
            lx.bump();
            lx.eat_string_body();
            TokenKind::Str
        } else if c == '\'' {
            lx.bump();
            match lx.peek() {
                // `'\n'`-style escapes are always char literals.
                Some('\\') => {
                    lx.bump();
                    lx.bump();
                    // Unicode escapes span to the closing brace.
                    while lx.peek().is_some_and(|n| n != '\'') {
                        lx.bump();
                    }
                    lx.bump();
                    TokenKind::Str
                }
                Some(n) if is_ident_start(n) => {
                    while lx.peek().is_some_and(is_ident_continue) {
                        lx.bump();
                    }
                    if lx.peek() == Some('\'') {
                        lx.bump();
                        TokenKind::Str
                    } else {
                        TokenKind::Lifetime
                    }
                }
                // `'<'`-style single punctuation char literal.
                Some(_) => {
                    lx.bump();
                    if lx.peek() == Some('\'') {
                        lx.bump();
                    }
                    TokenKind::Str
                }
                None => TokenKind::Punct,
            }
        } else {
            lx.bump();
            TokenKind::Punct
        };
        out.push(Token {
            kind,
            text: lx.text_since(start),
            line,
            col,
            in_test: false,
        });
    }
    out
}

/// Marks every token inside a `#[test]` / `#[cfg(test)]`-gated item with
/// `in_test = true`, so request-path rules skip test code.
///
/// Heuristic (sufficient for this workspace's style): an attribute whose
/// token set contains the identifier `test` gates the *item* that follows.
/// The item's extent is the next top-relative `{ ... }` block — or, for
/// brace-less items like `#[cfg(test)] use ...;`, the next `;`.
pub fn mark_test_regions(tokens: &mut [Token]) {
    let mut i = 0usize;
    while i < tokens.len() {
        if tokens[i].is_punct('#')
            && tokens.get(i + 1).is_some_and(|t| t.is_punct('['))
            && !tokens[i].in_test
        {
            // Collect the attribute's tokens up to the matching `]`.
            let mut j = i + 2;
            let mut depth = 1usize;
            let mut has_test = false;
            while j < tokens.len() && depth > 0 {
                if tokens[j].is_punct('[') {
                    depth += 1;
                } else if tokens[j].is_punct(']') {
                    depth -= 1;
                } else if tokens[j].is_ident("test") {
                    has_test = true;
                }
                j += 1;
            }
            if has_test {
                // Walk forward to the gated item's body: first `{` before a
                // top-level `;` ends the item at its matching `}`.
                let mut k = j;
                let mut body_start = None;
                while k < tokens.len() {
                    if tokens[k].is_punct('{') {
                        body_start = Some(k);
                        break;
                    }
                    if tokens[k].is_punct(';') {
                        break;
                    }
                    k += 1;
                }
                let end = match body_start {
                    Some(open) => {
                        let mut depth = 1usize;
                        let mut m = open + 1;
                        while m < tokens.len() && depth > 0 {
                            if tokens[m].is_punct('{') {
                                depth += 1;
                            } else if tokens[m].is_punct('}') {
                                depth -= 1;
                            }
                            m += 1;
                        }
                        m
                    }
                    None => (k + 1).min(tokens.len()),
                };
                for t in &mut tokens[i..end] {
                    t.in_test = true;
                }
                i = end;
                continue;
            }
            i = j;
            continue;
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn lexes_idents_numbers_and_punct() {
        let toks = kinds("fn add(a: i64) -> i64 { a + 1_000 }");
        assert!(toks.contains(&(TokenKind::Ident, "fn".into())));
        assert!(toks.contains(&(TokenKind::Int, "1_000".into())));
        assert!(toks.contains(&(TokenKind::Punct, "{".into())));
    }

    #[test]
    fn distinguishes_ranges_floats_and_method_calls() {
        let toks = kinds("0..len 1.5 2f64 1e-3 1.max(2) 0x1f");
        assert!(toks.contains(&(TokenKind::Int, "0".into())));
        assert!(toks.contains(&(TokenKind::Float, "1.5".into())));
        assert!(toks.contains(&(TokenKind::Float, "2f64".into())));
        assert!(toks.contains(&(TokenKind::Float, "1e-3".into())));
        assert!(toks.contains(&(TokenKind::Int, "1".into())));
        assert!(toks.contains(&(TokenKind::Ident, "max".into())));
        assert!(toks.contains(&(TokenKind::Int, "0x1f".into())));
    }

    #[test]
    fn strings_comments_and_lifetimes() {
        let toks = kinds(
            "let s = \"a \\\" ] b\"; // trailing [\n/* block /* nested */ */ r#\"raw \" here\"# 'a 'x' b'\\n'",
        );
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("] b")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::LineComment && t.contains("trailing")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::BlockComment && t.contains("nested")));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.contains("raw")));
        assert!(toks.contains(&(TokenKind::Lifetime, "'a".into())));
        assert!(toks.contains(&(TokenKind::Str, "'x'".into())));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Str && t.starts_with("b'")));
    }

    #[test]
    fn spans_are_one_based_lines_and_cols() {
        let toks = lex("a\n  bb\n");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
        assert_eq!(toks[1].text, "bb");
    }

    #[test]
    fn test_regions_are_marked() {
        let src = "fn live() { x.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { y.unwrap(); }\n}\nfn live2() {}\n";
        let mut toks = lex(src);
        mark_test_regions(&mut toks);
        let unwraps: Vec<bool> = toks
            .iter()
            .filter(|t| t.is_ident("unwrap"))
            .map(|t| t.in_test)
            .collect();
        assert_eq!(unwraps, vec![false, true]);
        assert!(
            !toks.last().unwrap().in_test,
            "code after the test mod is live"
        );
    }

    #[test]
    fn test_fn_attribute_gates_only_that_fn() {
        let src = "#[test]\nfn t() { a.unwrap(); }\nfn live() { b.unwrap(); }\n";
        let mut toks = lex(src);
        mark_test_regions(&mut toks);
        let unwraps: Vec<bool> = toks
            .iter()
            .filter(|t| t.is_ident("unwrap"))
            .map(|t| t.in_test)
            .collect();
        assert_eq!(unwraps, vec![true, false]);
    }

    #[test]
    fn cfg_test_use_item_without_braces() {
        let src = "#[cfg(test)]\nuse std::io;\nfn live() { c.unwrap(); }\n";
        let mut toks = lex(src);
        mark_test_regions(&mut toks);
        assert!(toks
            .iter()
            .filter(|t| t.is_ident("unwrap"))
            .all(|t| !t.in_test));
    }
}
