//! The domain-specific rule set.
//!
//! Each rule is a pure function from `(workspace-relative path, token
//! stream)` to violations. Rules are token-pattern heuristics, not semantic
//! analyses — they are tuned to this workspace's code style and err on the
//! side of firing (a human can always add a `// lint:allow(<rule>)` pragma;
//! the acceptance bar for the request-path crates is zero pragmas, which the
//! fixed code meets).

use crate::lexer::{Token, TokenKind};
use crate::Violation;

/// Stable rule identifiers, in reporting order.
pub const RULE_IDS: [&str; 6] = [
    "no-panic-on-request-path",
    "unsafe-needs-safety-comment",
    "no-lock-across-io",
    "pin-guard-no-io",
    "kernel-range-twin",
    "exact-int-json",
];

fn violation(rule: &'static str, path: &str, tok: &Token, message: String) -> Violation {
    Violation {
        rule,
        path: path.to_string(),
        line: tok.line,
        col: tok.col,
        message,
    }
}

/// Whether `path` is on the untrusted request path: everything in the server
/// crate plus the planner's hand-rolled JSON and wire-decode layers, plus
/// the pager crate — its buffer pool sits under every paged session, so a
/// panic there poisons pool locks for all concurrent readers — plus the
/// grace-join path, which runs arbitrary key data through partition writers
/// under the same shared pool.
fn on_request_path(path: &str) -> bool {
    path.starts_with("crates/server/src/")
        || path.starts_with("crates/pager/src/")
        || path == "crates/core/src/paged/grace.rs"
        || path == "crates/planner/src/json.rs"
        || path == "crates/planner/src/wire.rs"
}

/// The significant (non-comment) token before index `i`, if any.
fn prev_significant(tokens: &[Token], i: usize) -> Option<&Token> {
    tokens[..i].iter().rev().find(|t| !t.is_comment())
}

/// The significant (non-comment) token after index `i`, if any.
fn next_significant(tokens: &[Token], i: usize) -> Option<&Token> {
    tokens[i + 1..].iter().find(|t| !t.is_comment())
}

/// Rule 1 — `no-panic-on-request-path`.
///
/// On the request path (server crate, planner json/wire), non-test code must
/// not contain `.unwrap()`, `.expect(`, `panic!` and friends, or indexing by
/// an integer literal (`frame[0]`) — a malformed frame must map to a typed
/// error, never a worker panic.
pub fn no_panic_on_request_path(path: &str, tokens: &[Token]) -> Vec<Violation> {
    const RULE: &str = "no-panic-on-request-path";
    let mut out = Vec::new();
    if !on_request_path(path) {
        return out;
    }
    for (i, tok) in tokens.iter().enumerate() {
        if tok.in_test || tok.kind != TokenKind::Ident {
            continue;
        }
        let followed_by = |ch| next_significant(tokens, i).is_some_and(|t| t.is_punct(ch));
        match tok.text.as_str() {
            // `.unwrap()` / `.expect(...)` method calls. The leading-dot
            // check keeps same-named local methods (none remain after this
            // PR; `json::Parser::expect` was renamed `eat`) and plain
            // identifiers out of scope.
            "unwrap" | "expect" => {
                let is_method = prev_significant(tokens, i).is_some_and(|t| t.is_punct('.'));
                if is_method && followed_by('(') {
                    out.push(violation(
                        RULE,
                        path,
                        tok,
                        format!(
                            "`.{}()` on the request path can panic a pooled worker; return a typed error",
                            tok.text
                        ),
                    ));
                }
            }
            // Panicking macros.
            "panic" | "unreachable" | "todo" | "unimplemented" if followed_by('!') => {
                out.push(violation(
                    RULE,
                    path,
                    tok,
                    format!(
                        "`{}!` on the request path; return a typed error instead",
                        tok.text
                    ),
                ));
            }
            "panic_any" if followed_by('(') => {
                out.push(violation(
                    RULE,
                    path,
                    tok,
                    "`panic_any` on the request path; return a typed error instead".to_string(),
                ));
            }
            _ => {}
        }
    }
    // Integer-literal indexing of untrusted slices: `expr[0]`. The token
    // before `[` must be an expression tail (identifier, `)`, or `]`) so
    // array types `[u8; 4]`, array literals, and attributes `#[...]` don't
    // fire.
    let sig: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    for i in 1..sig.len() {
        if sig[i].in_test || !sig[i].is_punct('[') {
            continue;
        }
        let tail = sig[i - 1].kind == TokenKind::Ident
            || sig[i - 1].is_punct(')')
            || sig[i - 1].is_punct(']');
        let (Some(idx), Some(close)) = (sig.get(i + 1), sig.get(i + 2)) else {
            continue;
        };
        if tail && idx.kind == TokenKind::Int && close.is_punct(']') {
            out.push(violation(
                RULE,
                path,
                idx,
                format!(
                    "indexing with literal `[{}]` on the request path can panic on short input; use `get` or a slice pattern",
                    idx.text
                ),
            ));
        }
    }
    out
}

/// Rule 2 — `unsafe-needs-safety-comment`.
///
/// Every `unsafe` keyword (block or fn) must be preceded — within the three
/// lines above it or on its own line — by a comment containing `SAFETY:`.
/// The workspace currently has zero `unsafe`; this rule keeps any future
/// introduction honest.
pub fn unsafe_needs_safety_comment(path: &str, tokens: &[Token]) -> Vec<Violation> {
    const RULE: &str = "unsafe-needs-safety-comment";
    let mut out = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if !tok.is_ident("unsafe") {
            continue;
        }
        let justified = tokens[..i]
            .iter()
            .rev()
            .take_while(|t| t.line + 3 >= tok.line)
            .any(|t| t.is_comment() && t.text.contains("SAFETY:"));
        if !justified {
            out.push(violation(
                RULE,
                path,
                tok,
                "`unsafe` without a preceding `// SAFETY:` comment".to_string(),
            ));
        }
    }
    out
}

/// A live guard binding for the guard-across-I/O rules.
struct Guard {
    name: String,
    brace_depth: usize,
    line: u32,
}

/// Blocking I/O methods (fired on a `.` receiver) shared by the
/// guard-across-I/O rules.
const IO_METHODS: [&str; 9] = [
    "read",
    "read_exact",
    "write",
    "write_all",
    "flush",
    "accept",
    "recv",
    "recv_timeout",
    "connect",
];
/// Blocking free/associated frame helpers shared by the guard-across-I/O
/// rules.
const IO_FREE: [&str; 2] = ["read_frame", "write_frame"];

/// The shared walk behind `no-lock-across-io` and `pin-guard-no-io`: a `let`
/// statement whose initializer contains a method call matched by `acquire`
/// starts a guard; the guard dies at the end of its block or at
/// `drop(name)`. Any blocking I/O call while a guard is live fires a
/// violation naming the guards via `noun`.
fn guard_across_io(
    rule: &'static str,
    noun: &str,
    acquire: fn(&str) -> bool,
    path: &str,
    tokens: &[Token],
) -> Vec<Violation> {
    let mut out = Vec::new();
    let sig: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let mut guards: Vec<Guard> = Vec::new();
    let mut depth = 0usize;
    let mut i = 0usize;
    while i < sig.len() {
        let tok = sig[i];
        if tok.is_punct('{') {
            depth += 1;
        } else if tok.is_punct('}') {
            depth = depth.saturating_sub(1);
            guards.retain(|g| g.brace_depth <= depth);
        } else if tok.is_ident("drop") && sig.get(i + 1).is_some_and(|t| t.is_punct('(')) {
            if let Some(name) = sig.get(i + 2) {
                guards.retain(|g| g.name != name.text);
            }
        } else if tok.is_ident("let") && !tok.in_test {
            // Binding name: first identifier after `let` (skipping `mut`).
            let mut j = i + 1;
            while sig.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            let name = sig
                .get(j)
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text.clone());
            // Scan the statement (to `;` at this brace depth, or to a `{`
            // that opens a sub-block as in `if let`/`while let`) for an
            // acquisition.
            let mut k = i + 1;
            let mut acquires = false;
            while let Some(t) = sig.get(k) {
                if t.is_punct(';') || t.is_punct('{') {
                    break;
                }
                if t.kind == TokenKind::Ident
                    && acquire(&t.text)
                    && sig.get(k.wrapping_sub(1)).is_some_and(|p| p.is_punct('.'))
                    && sig.get(k + 1).is_some_and(|n| n.is_punct('('))
                {
                    acquires = true;
                }
                k += 1;
            }
            if acquires {
                if let Some(name) = name {
                    guards.push(Guard {
                        name,
                        brace_depth: depth,
                        line: tok.line,
                    });
                }
            }
        } else if !tok.in_test && tok.kind == TokenKind::Ident && !guards.is_empty() {
            let is_call = sig.get(i + 1).is_some_and(|t| t.is_punct('('));
            let is_method = sig.get(i.wrapping_sub(1)).is_some_and(|t| t.is_punct('.'));
            let fires = is_call
                && ((is_method && IO_METHODS.contains(&tok.text.as_str()))
                    || IO_FREE.contains(&tok.text.as_str()));
            if fires {
                let held: Vec<String> = guards
                    .iter()
                    .map(|g| format!("`{}` (line {})", g.name, g.line))
                    .collect();
                out.push(violation(
                    rule,
                    path,
                    tok,
                    format!(
                        "blocking I/O call `{}` while {noun}(s) {} are live; drop the guard first",
                        tok.text,
                        held.join(", ")
                    ),
                ));
            }
        }
        i += 1;
    }
    out
}

/// Rule 3 — `no-lock-across-io`.
///
/// In the server crate, a `Mutex`/`RwLock`/`Condvar` guard binding must not
/// be live across a blocking I/O call (`read`/`write`/`accept`/frame
/// helpers). Heuristic: a `let` statement whose initializer contains
/// `.lock(`/`.wait(` *on a lock receiver* starts a guard; the guard dies at
/// the end of its block or at `drop(name)`. Any I/O call while a guard is
/// live fires.
pub fn no_lock_across_io(path: &str, tokens: &[Token]) -> Vec<Violation> {
    if !path.starts_with("crates/server/src/") {
        return Vec::new();
    }
    guard_across_io(
        "no-lock-across-io",
        "lock guard",
        |name| matches!(name, "lock" | "wait" | "wait_timeout"),
        path,
        tokens,
    )
}

/// Rule 4 — `pin-guard-no-io`.
///
/// A pinned-page guard (a `let` binding whose initializer calls `.pin(`)
/// must not be live across blocking session I/O. A pin occupies a
/// buffer-pool frame; holding one while a slow client drains a socket write
/// shrinks the pool for every concurrent session and can deadlock a
/// budget-of-one pool outright. Decode the page into an owned value, drop
/// the pin, then write.
///
/// Scope: the server crate (sessions), the pager's background prefetcher
/// (its workers share the pool with every foreground pin), and the chunked
/// paged operators including the grace-hash join (single-pin discipline is
/// what makes one-frame pools survivable). The pool's own internals
/// (`pool.rs`/`store.rs`) stay exempt — pinning around store I/O there *is*
/// the mechanism.
pub fn pin_guard_no_io(path: &str, tokens: &[Token]) -> Vec<Violation> {
    let in_scope = path.starts_with("crates/server/src/")
        || path == "crates/pager/src/prefetch.rs"
        || path.starts_with("crates/core/src/paged/");
    if !in_scope {
        return Vec::new();
    }
    guard_across_io(
        "pin-guard-no-io",
        "pinned-page guard",
        |name| name == "pin",
        path,
        tokens,
    )
}

/// A function's extent in the significant-token stream: `(name, open-brace
/// index, close-brace index)`, exclusive of the braces themselves.
fn fn_spans(sig: &[&Token]) -> Vec<(String, usize, usize)> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < sig.len() {
        if sig[i].is_ident("fn") {
            if let Some(name_tok) = sig.get(i + 1).filter(|t| t.kind == TokenKind::Ident) {
                // Find the body's `{` (or a `;` for trait-method decls).
                let mut j = i + 2;
                let mut open = None;
                while let Some(t) = sig.get(j) {
                    if t.is_punct('{') {
                        open = Some(j);
                        break;
                    }
                    if t.is_punct(';') {
                        break;
                    }
                    j += 1;
                }
                if let Some(open) = open {
                    let mut depth = 1usize;
                    let mut k = open + 1;
                    while let Some(t) = sig.get(k) {
                        if t.is_punct('{') {
                            depth += 1;
                        } else if t.is_punct('}') {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        k += 1;
                    }
                    out.push((name_tok.text.clone(), open, k));
                    i = open;
                }
            }
        }
        i += 1;
    }
    out
}

/// Rule 5 — `kernel-range-twin`.
///
/// In `smoke_storage::kernels`, every whole-column kernel `foo` that has a
/// `foo_range` sibling must be a pure `0..len` delegation to it — a single
/// call expression, no statements — so the pair cannot drift apart.
pub fn kernel_range_twin(path: &str, tokens: &[Token]) -> Vec<Violation> {
    const RULE: &str = "kernel-range-twin";
    let mut out = Vec::new();
    if path != "crates/storage/src/kernels.rs" {
        return out;
    }
    let sig: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let spans = fn_spans(&sig);
    let names: Vec<&str> = spans.iter().map(|(n, _, _)| n.as_str()).collect();
    for (name, open, close) in &spans {
        if sig[*open].in_test {
            continue;
        }
        let twin = format!("{name}_range");
        if !names.contains(&twin.as_str()) {
            continue;
        }
        let body = &sig[*open + 1..*close];
        let delegates = body.first().is_some_and(|t| t.is_ident(&twin))
            && body.get(1).is_some_and(|t| t.is_punct('('))
            && !body.iter().any(|t| t.is_punct(';'))
            && body
                .iter()
                .any(|t| t.kind == TokenKind::Int && t.text == "0");
        if !delegates {
            out.push(violation(
                RULE,
                path,
                sig[*open],
                format!(
                    "kernel `{name}` has a `{twin}` sibling but is not a single `{twin}(.., 0, ..len())` delegation; the pair can drift"
                ),
            ));
        }
    }
    out
}

/// Rule 6 — `exact-int-json`.
///
/// The hand-rolled JSON layer renders integers exactly; float conversions
/// (`as f64` / `as f32` casts, `parse::<f64>`) are confined to the explicit
/// float codec (`as_f64`, `as_i64`, `number`, `render_into`). Anywhere else
/// in `json.rs` they silently lose precision above 2^53.
pub fn exact_int_json(path: &str, tokens: &[Token]) -> Vec<Violation> {
    const RULE: &str = "exact-int-json";
    let mut out = Vec::new();
    if path != "crates/planner/src/json.rs" {
        return out;
    }
    const ALLOWED_FNS: [&str; 4] = ["as_f64", "as_i64", "number", "render_into"];
    let sig: Vec<&Token> = tokens.iter().filter(|t| !t.is_comment()).collect();
    let spans = fn_spans(&sig);
    let enclosing_fn = |idx: usize| -> Option<&str> {
        spans
            .iter()
            .rfind(|(_, open, close)| *open < idx && idx < *close)
            .map(|(n, _, _)| n.as_str())
    };
    for i in 0..sig.len() {
        let tok = sig[i];
        if tok.in_test || tok.kind != TokenKind::Ident {
            continue;
        }
        let is_float_cast = matches!(tok.text.as_str(), "f64" | "f32")
            && sig.get(i.wrapping_sub(1)).is_some_and(|t| t.is_ident("as"));
        let is_float_parse = tok.text == "parse"
            && sig.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && sig
                .iter()
                .skip(i + 2)
                .take(4)
                .any(|t| t.is_ident("f64") || t.is_ident("f32"));
        if (is_float_cast || is_float_parse)
            && !enclosing_fn(i).is_some_and(|f| ALLOWED_FNS.contains(&f))
        {
            out.push(violation(
                RULE,
                path,
                tok,
                format!(
                    "float conversion in the JSON layer outside the float codec ({}); integers must render exactly",
                    ALLOWED_FNS.join(", ")
                ),
            ));
        }
    }
    out
}

/// Runs every rule over one file's token stream.
pub fn run_all(path: &str, tokens: &[Token]) -> Vec<Violation> {
    let mut out = Vec::new();
    out.extend(no_panic_on_request_path(path, tokens));
    out.extend(unsafe_needs_safety_comment(path, tokens));
    out.extend(no_lock_across_io(path, tokens));
    out.extend(pin_guard_no_io(path, tokens));
    out.extend(kernel_range_twin(path, tokens));
    out.extend(exact_int_json(path, tokens));
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}
