//! `smoke-lint`: the workspace invariant checker.
//!
//! Clippy and rustc see Rust; they cannot see *Smoke's* invariants — that
//! the server's request path never panics on untrusted bytes, that lock
//! guards and pinned buffer-pool pages never straddle blocking I/O, that
//! whole-column kernels stay pure
//! `0..len` delegations of their `_range` twins, that the hand-rolled JSON
//! layer keeps integers exact. This crate encodes those invariants as lint
//! rules over a hand-rolled token stream (the workspace vendors its few
//! dependencies and deliberately excludes `syn`).
//!
//! Entry points: [`check_source`] lints one in-memory file (what the fixture
//! tests use), [`run_workspace`] walks every `crates/*/src/**.rs` file.
//! Violations carry a stable rule ID, a `file:line:col` span, and a message;
//! a `// lint:allow(<rule>)` comment on the same or preceding line
//! suppresses a violation. The CI gate runs `smoke-lint --workspace` and
//! fails on any violation.

#![warn(missing_docs)]

pub mod lexer;
pub mod rules;

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One rule violation at a source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Stable rule identifier (see [`rules::RULE_IDS`]).
    pub rule: &'static str,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// The result of linting one file.
#[derive(Debug, Default)]
pub struct CheckResult {
    /// Violations that survived suppression, sorted by span.
    pub violations: Vec<Violation>,
    /// Number of violations silenced by `lint:allow` pragmas.
    pub suppressed: usize,
}

/// A suppression pragma parsed from a comment: the rule it allows and the
/// lines it covers (its own line and the next).
struct Allow {
    rule: String,
    line: u32,
}

fn parse_allows(tokens: &[lexer::Token]) -> Vec<Allow> {
    let mut allows = Vec::new();
    for tok in tokens.iter().filter(|t| t.is_comment()) {
        let text = &tok.text;
        let mut rest = text.as_str();
        while let Some(at) = rest.find("lint:allow(") {
            rest = &rest[at + "lint:allow(".len()..];
            if let Some(end) = rest.find(')') {
                for rule in rest[..end].split(',') {
                    allows.push(Allow {
                        rule: rule.trim().to_string(),
                        line: tok.line,
                    });
                }
                rest = &rest[end + 1..];
            } else {
                break;
            }
        }
    }
    allows
}

/// Lints one source file given its workspace-relative path (the path decides
/// which rules apply — e.g. `crates/server/src/...` activates the
/// request-path and lock rules).
pub fn check_source(rel_path: &str, src: &str) -> CheckResult {
    let mut tokens = lexer::lex(src);
    lexer::mark_test_regions(&mut tokens);
    let raw = rules::run_all(rel_path, &tokens);
    let allows = parse_allows(&tokens);
    let mut result = CheckResult::default();
    for v in raw {
        let allowed = allows
            .iter()
            .any(|a| a.rule == v.rule && (a.line == v.line || a.line + 1 == v.line));
        if allowed {
            result.suppressed += 1;
        } else {
            result.violations.push(v);
        }
    }
    result
}

/// Locates the workspace root by walking up from `start` to the first
/// directory whose `Cargo.toml` declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Some(d);
            }
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect_rs_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Lints every `crates/*/src/**.rs` file under the workspace root. Fixture
/// files (under `tests/`) are deliberately out of scope — they exist to
/// violate the rules.
pub fn run_workspace(root: &Path) -> io::Result<CheckResult> {
    let crates_dir = root.join("crates");
    let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    let mut files = Vec::new();
    for crate_dir in crate_dirs {
        let src = crate_dir.join("src");
        if src.is_dir() {
            collect_rs_files(&src, &mut files)?;
        }
    }
    let mut result = CheckResult::default();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .components()
            .map(|c| c.as_os_str().to_string_lossy())
            .collect::<Vec<_>>()
            .join("/");
        let src = fs::read_to_string(&file)?;
        let one = check_source(&rel, &src);
        result.suppressed += one.suppressed;
        result.violations.extend(one.violations);
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suppression_covers_same_and_next_line() {
        let src =
            "fn f(v: &[u8]) -> u8 {\n    // lint:allow(no-panic-on-request-path)\n    v[0]\n}\n";
        let r = check_source("crates/server/src/x.rs", src);
        assert!(r.violations.is_empty(), "{:?}", r.violations);
        assert_eq!(r.suppressed, 1);
    }

    #[test]
    fn suppression_is_rule_specific() {
        let src =
            "fn f(v: &[u8]) -> u8 {\n    // lint:allow(unsafe-needs-safety-comment)\n    v[0]\n}\n";
        let r = check_source("crates/server/src/x.rs", src);
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.suppressed, 0);
    }

    #[test]
    fn rules_scope_by_path() {
        let src = "fn f(v: &[u8]) -> u8 { v[0] }\n";
        assert_eq!(
            check_source("crates/server/src/x.rs", src).violations.len(),
            1
        );
        assert!(check_source("crates/storage/src/x.rs", src)
            .violations
            .is_empty());
    }

    #[test]
    fn violations_render_with_span_and_rule_id() {
        let src = "fn f(v: &[u8]) -> u8 { v[0] }\n";
        let r = check_source("crates/server/src/x.rs", src);
        let line = r.violations[0].to_string();
        assert!(
            line.starts_with("crates/server/src/x.rs:1:26: [no-panic-on-request-path]"),
            "{line}"
        );
    }
}
