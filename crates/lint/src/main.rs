//! The `smoke-lint` CLI.
//!
//! ```text
//! smoke-lint --workspace          # lint every crates/*/src file (CI gate)
//! smoke-lint <file> [<file>...]   # lint specific files
//! smoke-lint --list-rules         # print the rule IDs and exit
//! ```
//!
//! Exit codes: `0` clean, `1` violations found, `2` usage or I/O error.

use std::env;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use smoke_lint::{check_source, find_workspace_root, rules, run_workspace, CheckResult};

fn usage() -> ExitCode {
    eprintln!("usage: smoke-lint --workspace | --list-rules | <file.rs>...");
    ExitCode::from(2)
}

fn report(result: &CheckResult) -> ExitCode {
    for v in &result.violations {
        println!("{v}");
    }
    if result.suppressed > 0 {
        eprintln!(
            "smoke-lint: {} violation(s) suppressed by lint:allow pragmas",
            result.suppressed
        );
    }
    if result.violations.is_empty() {
        eprintln!("smoke-lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("smoke-lint: {} violation(s)", result.violations.len());
        ExitCode::from(1)
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    if args.is_empty() {
        return usage();
    }
    match args[0].as_str() {
        "--list-rules" => {
            for rule in rules::RULE_IDS {
                println!("{rule}");
            }
            ExitCode::SUCCESS
        }
        "--workspace" => {
            let cwd = match env::current_dir() {
                Ok(d) => d,
                Err(e) => {
                    eprintln!("smoke-lint: cannot determine working directory: {e}");
                    return ExitCode::from(2);
                }
            };
            let Some(root) = find_workspace_root(&cwd) else {
                eprintln!(
                    "smoke-lint: no workspace root (Cargo.toml with [workspace]) above {}",
                    cwd.display()
                );
                return ExitCode::from(2);
            };
            match run_workspace(&root) {
                Ok(result) => report(&result),
                Err(e) => {
                    eprintln!("smoke-lint: workspace walk failed: {e}");
                    ExitCode::from(2)
                }
            }
        }
        _ => {
            let cwd = env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
            let root = find_workspace_root(&cwd);
            let mut merged = CheckResult::default();
            for arg in &args {
                if arg.starts_with("--") {
                    return usage();
                }
                let path = Path::new(arg);
                let src = match std::fs::read_to_string(path) {
                    Ok(s) => s,
                    Err(e) => {
                        eprintln!("smoke-lint: cannot read {arg}: {e}");
                        return ExitCode::from(2);
                    }
                };
                // Rule scoping keys off the workspace-relative path.
                let canonical = path.canonicalize().unwrap_or_else(|_| path.to_path_buf());
                let rel = root
                    .as_deref()
                    .and_then(|r| canonical.strip_prefix(r).ok())
                    .map(|p| {
                        p.components()
                            .map(|c| c.as_os_str().to_string_lossy())
                            .collect::<Vec<_>>()
                            .join("/")
                    })
                    .unwrap_or_else(|| arg.clone());
                let one = check_source(&rel, &src);
                merged.suppressed += one.suppressed;
                merged.violations.extend(one.violations);
            }
            report(&merged)
        }
    }
}
