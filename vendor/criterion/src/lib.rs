//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the `smoke-bench` benches use — benchmark
//! groups, `sample_size`, `bench_function`, `bench_with_input`,
//! [`BenchmarkId`], and the `criterion_group!`/`criterion_main!` macros — as
//! a plain wall-clock harness: each benchmark runs one warm-up iteration plus
//! `sample_size` (capped at 10) timed iterations and prints the mean. This
//! keeps `cargo bench --no-run` and `cargo bench` meaningful without registry
//! access; statistical rigor returns when the upstream crate is restored via
//! `[workspace.dependencies]`.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Maximum timed iterations per benchmark; keeps full `cargo bench` runs at
/// CI-friendly latencies.
const MAX_SAMPLES: usize = 10;

/// Entry point mirroring `criterion::Criterion`.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group: {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: MAX_SAMPLES,
        }
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed iterations (capped at 10 in this stand-in).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.clamp(1, MAX_SAMPLES);
        self
    }

    /// Runs a benchmark identified by `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), |b| f(b));
        self
    }

    /// Runs a benchmark that borrows a fixed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id, |b| f(b, input));
        self
    }

    /// Finishes the group.
    pub fn finish(self) {}

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            samples: self.sample_size,
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        let mean = if bencher.iters > 0 {
            bencher.elapsed / bencher.iters as u32
        } else {
            Duration::ZERO
        };
        println!(
            "  {}/{}: mean {:?} over {} iters",
            self.name, id, mean, bencher.iters
        );
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// A benchmark named `name`, parameterized by `parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            name: name.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// A benchmark identified only by a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            name: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.parameter {
            Some(p) if !self.name.is_empty() => write!(f, "{}/{}", self.name, p),
            Some(p) => write!(f, "{p}"),
            None => write!(f, "{}", self.name),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            name: name.to_string(),
            parameter: None,
        }
    }
}

impl From<String> for BenchmarkId {
    fn from(name: String) -> Self {
        BenchmarkId {
            name,
            parameter: None,
        }
    }
}

/// Timer handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    elapsed: Duration,
    iters: usize,
}

impl Bencher {
    /// Times `routine`: one untimed warm-up call, then `sample_size` timed
    /// calls.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        black_box(routine());
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(routine());
        }
        self.elapsed += start.elapsed();
        self.iters += self.samples;
    }
}

/// Opaque value barrier preventing the optimizer from deleting benched work.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Declares a benchmark group function from one or more target functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` from one or more `criterion_group!` names.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_group_runs_closures() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0usize;
        group.bench_function("count", |b| b.iter(|| calls += 1));
        group.bench_with_input(BenchmarkId::new("param", 7), &7, |b, v| {
            b.iter(|| black_box(*v))
        });
        group.finish();
        // One warm-up plus three samples.
        assert_eq!(calls, 4);
    }
}
