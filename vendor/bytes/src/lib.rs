//! Offline stand-in for the `bytes` crate.
//!
//! Implements the subset `smoke-core`'s external-store baseline uses:
//! [`Bytes`] (cheaply cloneable immutable byte buffer, ordered and
//! borrowable as `[u8]` so it can key a `BTreeMap`), [`BytesMut`], and the
//! big-endian [`BufMut`] writers `put_u8`/`put_u32`/`put_u64`.

#![warn(missing_docs)]

use std::borrow::Borrow;
use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates a new empty buffer.
    pub fn new() -> Self {
        Bytes::default()
    }

    /// Copies `slice` into a new buffer.
    pub fn copy_from_slice(slice: &[u8]) -> Self {
        Bytes { data: slice.into() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl Borrow<[u8]> for Bytes {
    fn borrow(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.data.iter() {
            write!(f, "{:02x}", b)?;
        }
        write!(f, "\"")
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(s: &[u8]) -> Self {
        Bytes::copy_from_slice(s)
    }
}

/// A growable byte buffer that freezes into [`Bytes`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Creates an empty buffer with room for `capacity` bytes.
    pub fn with_capacity(capacity: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(capacity),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.data)
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Big-endian write access to a growable buffer.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a `u32` in big-endian byte order.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a `u64` in big-endian byte order.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_and_ordering() {
        let mut buf = BytesMut::with_capacity(6);
        buf.put_u8(1);
        buf.put_u8(0);
        buf.put_u32(256);
        let frozen = buf.freeze();
        assert_eq!(&frozen[..], &[1, 0, 0, 0, 1, 0]);

        let small = Bytes::copy_from_slice(&[0, 0, 0, 1]);
        let big = Bytes::copy_from_slice(&[0, 0, 1, 0]);
        assert!(small < big, "big-endian keys sort numerically");
    }

    #[test]
    fn borrow_allows_slice_lookup() {
        use std::collections::BTreeMap;
        let mut map: BTreeMap<Bytes, i32> = BTreeMap::new();
        map.insert(Bytes::copy_from_slice(b"key"), 7);
        assert_eq!(map.get(b"key".as_slice()), Some(&7));
    }
}
