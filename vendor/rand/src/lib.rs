//! Offline stand-in for the `rand` crate.
//!
//! The container this workspace builds in has no access to crates.io, so this
//! vendored crate implements exactly the seeded-PRNG subset that
//! `smoke-datagen` consumes: [`rngs::StdRng`], [`SeedableRng::seed_from_u64`],
//! and the [`Rng`] methods `gen`, `gen_range`, and `gen_bool`. The generator
//! is xoshiro256++ seeded via SplitMix64 — deterministic for a given seed, as
//! the reproducibility of every synthetic dataset requires. Swap back to the
//! upstream crate by editing `[workspace.dependencies]` in the root manifest.

#![warn(missing_docs)]

use std::ops::Range;

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Returns the next pseudo-random `u64`.
    fn next_u64(&mut self) -> u64;
}

/// A PRNG that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator deterministically from a `u64` seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, provided for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard distribution.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from the half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        assert!(range.start < range.end, "gen_range called with empty range");
        T::sample_range(self, range.start, range.end)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        let unit: f64 = self.gen();
        unit < p
    }
}

impl<R: RngCore> Rng for R {}

/// Types samplable from their standard distribution via [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly distributed mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types uniformly samplable over a half-open range via [`Rng::gen_range`].
pub trait SampleUniform: PartialOrd + Copy {
    /// Draws one value uniformly from `lo..hi`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($ty:ty),*) => {$(
        impl SampleUniform for $ty {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as i128 - lo as i128) as u128;
                let draw = ((rng.next_u64() as u128) % span) as i128;
                (lo as i128 + draw) as $ty
            }
        }
    )*};
}

impl_sample_uniform_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        let unit = f64::sample(rng);
        lo + (hi - lo) * unit
    }
}

impl SampleUniform for f32 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
        f64::sample_range(rng, lo as f64, hi as f64) as f32
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (the stand-in for rand's
    /// ChaCha-based `StdRng`; statistical quality is ample for data
    /// generation, and seeding is reproducible).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion of the seed, per the xoshiro authors'
            // recommendation.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            StdRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen_range(0i64..1_000_000), b.gen_range(0i64..1_000_000));
        }
    }

    #[test]
    fn ranges_are_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1_000 {
            let i = rng.gen_range(-5i64..17);
            assert!((-5..17).contains(&i));
            let f = rng.gen_range(2.5f64..3.5);
            assert!((2.5..3.5).contains(&f));
            let u: f64 = rng.gen();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
