//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset the integration tests use: the `proptest!` macro
//! with `#![proptest_config(...)]`, range and tuple strategies,
//! `prop::collection::vec`, and the `prop_assert!`/`prop_assert_eq!` macros.
//! Cases are generated from a deterministic PRNG seeded by the test name, so
//! failures reproduce exactly across runs and machines. Shrinking is not
//! implemented — a failing case panics with the values visible via the
//! assertion message. Swap back to the upstream crate via
//! `[workspace.dependencies]` when registry access is available.

#![warn(missing_docs)]

use std::ops::Range;

/// Per-test configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs `cases` random cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic SplitMix64 generator used to produce test cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a hash), so every test has
    /// its own reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: hash }
    }

    /// Next pseudo-random 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `u64` in `[0, span)`.
    fn below(&mut self, span: u64) -> u64 {
        self.next_u64() % span.max(1)
    }

    /// Uniform `f64` in `[0, 1)`.
    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values for one macro argument.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_for_int_range {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $ty
            }
        }
    )*};
}

impl_strategy_for_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (self.end - self.start) * rng.unit_f64()
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

/// Strategy combinators, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// A strategy producing `Vec`s whose length is drawn from `size` and
        /// whose elements are drawn from `element`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// Vectors of `element` values with length in `size`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = self.size.generate(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a `proptest!` test needs in scope.
pub mod prelude {
    pub use crate::{prop, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

/// Asserts a condition inside a property; panics (failing the case) when
/// false.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property; panics (failing the case) when the
/// sides differ.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Declares property-based tests: each `fn` runs `config.cases` times with
/// arguments drawn from the strategies after `in`.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for _ in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_and_collections_stay_in_bounds(
            xs in prop::collection::vec(0i64..20, 1..50),
            f in 0.0f64..100.0,
            n in 5usize..9,
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 50);
            prop_assert!(xs.iter().all(|&x| (0..20).contains(&x)));
            prop_assert!((0.0..100.0).contains(&f));
            prop_assert!((5..9).contains(&n));
        }

        #[test]
        fn tuple_strategies_work(
            pairs in prop::collection::vec((0i64..15, 0i64..5), 1..30),
        ) {
            for (a, b) in &pairs {
                prop_assert!((0..15).contains(a));
                prop_assert!((0..5).contains(b));
            }
        }
    }

    #[test]
    fn deterministic_streams_reproduce() {
        let mut a = super::TestRng::deterministic("t");
        let mut b = super::TestRng::deterministic("t");
        for _ in 0..10 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
