//! Integration tests for the workload-aware optimizations (§4) over the
//! TPC-H-like data: data skipping, aggregation push-down, instrumentation
//! pruning, and their equivalence with the lazy rewrites.

use smoke::core::lazy::{backward_predicate, lazy_consume};
use smoke::core::query::{consume_aggregate, consume_from_cube, consume_with_skipping};
use smoke::core::{AggPushdown, CaptureConfig, DirectionFilter, WorkloadOptions};
use smoke::datagen::tpch::TpchSpec;
use smoke::datagen::tpch_queries::{
    drilldown_aggs, q1, q1_shipdate_cutoff, q1a_keys, q1b_partition_attrs, q3,
};
use smoke::prelude::*;

fn db() -> Database {
    TpchSpec {
        scale_factor: 0.0015,
        seed: 7,
    }
    .generate()
}

fn normalized(rel: &Relation) -> Vec<Vec<String>> {
    let mut rows: Vec<Vec<String>> = (0..rel.len())
        .map(|rid| {
            rel.row_values(rid)
                .iter()
                .map(|v| format!("{v:.4}"))
                .collect()
        })
        .collect();
    rows.sort();
    rows
}

#[test]
fn q1a_index_scan_matches_lazy_rewrite() {
    let db = db();
    let lineitem = db.relation("lineitem").unwrap();
    let out = Executor::new(CaptureMode::Inject)
        .execute(&q1(), &db)
        .unwrap();
    let base_sel = Expr::col("l_shipdate").lt(Expr::lit(q1_shipdate_cutoff()));

    for bar in 0..out.relation.len() as u32 {
        let keys = vec![
            out.relation.value(bar as usize, 0),
            out.relation.value(bar as usize, 1),
        ];
        let rewrite = backward_predicate(
            &["l_returnflag".to_string(), "l_linestatus".to_string()],
            &keys,
            Some(&base_sel),
        );
        let lazy = lazy_consume(lineitem, &rewrite, None, &q1a_keys(), &drilldown_aggs()).unwrap();

        let rids = out.lineage.backward(&[bar], "lineitem");
        let eager = consume_aggregate(lineitem, &rids, &q1a_keys(), &drilldown_aggs()).unwrap();
        assert_eq!(normalized(&lazy), normalized(&eager), "bar {bar}");
    }
}

#[test]
fn data_skipping_partition_equals_filtered_index_scan() {
    let db = db();
    let lineitem = db.relation("lineitem").unwrap();
    let cfg = CaptureConfig::inject().with_workload(WorkloadOptions {
        skipping_partition_by: q1b_partition_attrs(),
        ..Default::default()
    });
    let out = Executor::with_config(cfg).execute(&q1(), &db).unwrap();
    let index = out
        .artifacts
        .partitioned
        .as_ref()
        .expect("partitioned index");

    let bar = 0u32;
    let rids = out.lineage.backward(&[bar], "lineitem");
    for mode in ["MAIL", "AIR"] {
        for instruct in ["NONE", "COLLECT COD"] {
            let skipped = consume_with_skipping(
                lineitem,
                index,
                bar,
                &format!("{mode}|{instruct}"),
                &q1a_keys(),
                &drilldown_aggs(),
            )
            .unwrap();
            let filtered = smoke::core::query::consume_filter_aggregate(
                lineitem,
                &rids,
                Some(
                    &Expr::col("l_shipmode")
                        .eq(Expr::lit(mode))
                        .and(Expr::col("l_shipinstruct").eq(Expr::lit(instruct))),
                ),
                &q1a_keys(),
                &drilldown_aggs(),
            )
            .unwrap();
            assert_eq!(
                normalized(&skipped),
                normalized(&filtered),
                "{mode}/{instruct}"
            );
        }
    }
}

#[test]
fn aggregation_pushdown_cube_matches_index_scan() {
    let db = db();
    let lineitem = db.relation("lineitem").unwrap();
    let aggs = drilldown_aggs();
    let cfg = CaptureConfig::inject().with_workload(WorkloadOptions {
        agg_pushdown: Some(AggPushdown {
            partition_by: vec!["l_tax".to_string()],
            aggs: aggs.clone(),
        }),
        ..Default::default()
    });
    let out = Executor::with_config(cfg).execute(&q1(), &db).unwrap();
    let cube = out.artifacts.cube.as_ref().expect("cube");

    for bar in 0..out.relation.len() as u32 {
        let rids = out.lineage.backward(&[bar], "lineitem");
        let eager = consume_aggregate(lineitem, &rids, &["l_tax".to_string()], &aggs).unwrap();
        let from_cube = consume_from_cube(cube, bar).unwrap();
        assert_eq!(normalized(&eager), normalized(&from_cube), "bar {bar}");
    }
}

#[test]
fn pruned_relations_capture_nothing_but_results_are_identical() {
    let db = db();
    let full = Executor::new(CaptureMode::Inject)
        .execute(&q3(), &db)
        .unwrap();
    let cfg = CaptureConfig::inject()
        .default_directions(DirectionFilter::None)
        .prune("lineitem", DirectionFilter::BackwardOnly);
    let pruned = Executor::with_config(cfg).execute(&q3(), &db).unwrap();

    assert_eq!(full.relation, pruned.relation);
    assert_eq!(pruned.lineage.tables(), vec!["lineitem"]);
    assert!(pruned.lineage.table("lineitem").unwrap().forward.is_none());
    // The captured backward lineage agrees with the full capture.
    for bar in 0..full.relation.len().min(20) as u32 {
        let mut a = full.lineage.backward(&[bar], "lineitem");
        let mut b = pruned.lineage.backward(&[bar], "lineitem");
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}

#[test]
fn selection_pushdown_restricts_indexes_to_matching_rows() {
    let db = db();
    let lineitem = db.relation("lineitem").unwrap();
    let cutoff = 0.03;
    let cfg = CaptureConfig::inject().with_workload(WorkloadOptions {
        selection_pushdown: Some(Expr::col("l_tax").lt(Expr::lit(cutoff))),
        ..Default::default()
    });
    let out = Executor::with_config(cfg).execute(&q1(), &db).unwrap();
    let full = Executor::new(CaptureMode::Inject)
        .execute(&q1(), &db)
        .unwrap();
    assert_eq!(out.relation, full.relation);

    let tax = lineitem.column_by_name("l_tax").unwrap().as_float();
    let mut pruned_total = 0usize;
    let mut full_total = 0usize;
    for bar in 0..out.relation.len() as u32 {
        let rids = out.lineage.backward(&[bar], "lineitem");
        pruned_total += rids.len();
        full_total += full.lineage.backward(&[bar], "lineitem").len();
        assert!(rids.iter().all(|&r| tax[r as usize] < cutoff));
    }
    assert!(
        pruned_total < full_total,
        "push-down should shrink the index"
    );
}
