//! Integration tests for the application layer: crossfilter sessions, data
//! profiling, provenance semantics, and the baseline capture techniques, all
//! running over the synthetic datasets.

use proptest::prelude::*;
use smoke::apps::crossfilter::{normalized_counts, CrossfilterSession, CrossfilterTechnique};
use smoke::apps::profiling::{check_fd, reference_violations, ProfilingTechnique};
use smoke::core::baselines::logical::{run_logical, LogicalTechnique};
use smoke::core::microbenchmark_aggs;
use smoke::datagen::ontime::{view_dimensions, OntimeSpec};
use smoke::datagen::physician::{paper_fds, PhysicianSpec};
use smoke::datagen::zipf::{zipf_table, ZipfSpec};
use smoke::lineage::semantics::{how_provenance, which_provenance, why_provenance};
use smoke::prelude::*;

#[test]
fn crossfilter_techniques_agree_over_the_ontime_data() {
    let base = OntimeSpec {
        rows: 4_000,
        seed: 29,
    }
    .generate();
    let dims = view_dimensions();
    let sessions: Vec<CrossfilterSession> = [
        CrossfilterTechnique::Lazy,
        CrossfilterTechnique::BackwardTrace,
        CrossfilterTechnique::BackwardForwardTrace,
        CrossfilterTechnique::PartialCube,
    ]
    .into_iter()
    .map(|t| CrossfilterSession::build(base.clone(), &dims, t).unwrap())
    .collect();

    // Brush a few bars of the delay and carrier views and compare all
    // refreshed views across techniques.
    for (view, bar) in [(2usize, 0u32), (2, 3), (3, 1)] {
        let reference: Vec<_> = sessions[0]
            .interact(view, bar)
            .unwrap()
            .iter()
            .map(normalized_counts)
            .collect();
        for session in &sessions[1..] {
            let got: Vec<_> = session
                .interact(view, bar)
                .unwrap()
                .iter()
                .map(normalized_counts)
                .collect();
            assert_eq!(got, reference, "technique {:?}", session.technique());
        }
    }
}

#[test]
fn profiling_techniques_agree_with_reference_counts() {
    let table = PhysicianSpec {
        rows: 6_000,
        practices: 300,
        violation_rate: 0.04,
        seed: 31,
    }
    .generate();
    for fd in paper_fds() {
        let expected = reference_violations(&table, &fd);
        for technique in [
            ProfilingTechnique::SmokeCd,
            ProfilingTechnique::SmokeUg,
            ProfilingTechnique::MetanomeUg,
        ] {
            let report = check_fd(&table, &fd, technique).unwrap();
            assert_eq!(report.violations, expected, "{fd:?} / {technique:?}");
            // The bipartite graph covers exactly the tuples with violating
            // LHS values.
            let lhs = table.column_by_name(&fd.lhs).unwrap();
            for v in &report.violations {
                let expected_tuples = (0..table.len())
                    .filter(|&rid| &lhs.value(rid).group_key() == v)
                    .count();
                assert_eq!(report.bipartite[v].len(), expected_tuples);
            }
        }
    }
}

#[test]
fn logical_baseline_agrees_with_smoke_on_microbenchmark_data() {
    let table = zipf_table(&ZipfSpec {
        theta: 1.0,
        rows: 5_000,
        groups: 50,
        seed: 2,
    });
    let mut db = Database::new();
    db.register(table).unwrap();
    let plan = PlanBuilder::scan("zipf")
        .group_by(&["z"], microbenchmark_aggs("v"))
        .build();

    let smoke = Executor::new(CaptureMode::Inject)
        .execute(&plan, &db)
        .unwrap();
    let (capture, lineage) = run_logical(&plan, &db, LogicalTechnique::LogicIdx).unwrap();
    let lineage = lineage.unwrap();
    assert_eq!(capture.output, smoke.relation);
    for o in 0..smoke.relation.len() as u32 {
        let mut a = smoke.lineage.backward(&[o], "zipf");
        let mut b = lineage.backward(&[o], "zipf");
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
    // The denormalized annotated relation has one row per input tuple — the
    // duplication the paper attributes the logical approaches' cost to.
    assert_eq!(capture.annotated.len(), 5_000);
}

#[test]
fn provenance_semantics_derived_from_join_lineage() {
    // Appendix E example: customers ⋈ orders grouped by customer.
    let mut customers = Relation::builder("customers")
        .column("cid", DataType::Int)
        .column("cname", DataType::Str);
    for (i, name) in ["Bob", "Alice"].iter().enumerate() {
        customers = customers.row(vec![Value::Int(i as i64 + 1), Value::Str((*name).into())]);
    }
    let mut orders = Relation::builder("orders")
        .column("ocid", DataType::Int)
        .column("pname", DataType::Str);
    for (cid, p) in [(1, "iPhone"), (1, "iPhone"), (2, "XBox")] {
        orders = orders.row(vec![Value::Int(cid), Value::Str(p.into())]);
    }
    let mut db = Database::new();
    db.register(customers.build().unwrap()).unwrap();
    db.register(orders.build().unwrap()).unwrap();

    let plan = PlanBuilder::scan("customers")
        .join(PlanBuilder::scan("orders"), &["cid"], &["ocid"])
        .group_by(&["cname", "pname"], vec![AggExpr::count("cnt")])
        .build();
    let out = Executor::new(CaptureMode::Inject)
        .execute(&plan, &db)
        .unwrap();
    let bob = out
        .find_output(|row| row[0] == Value::Str("Bob".into()))
        .unwrap();

    // Positionally-aligned backward lineage per relation.
    let cust_lin = out
        .lineage
        .table("customers")
        .unwrap()
        .backward()
        .lookup(bob);
    let ord_lin = out.lineage.table("orders").unwrap().backward().lookup(bob);
    assert_eq!(cust_lin, vec![0, 0]);
    assert_eq!(ord_lin, vec![0, 1]);

    let backward = vec![cust_lin, ord_lin];
    assert_eq!(which_provenance(&backward), vec![vec![0], vec![0, 1]]);
    assert_eq!(why_provenance(&backward), vec![vec![0, 0], vec![0, 1]]);
    assert_eq!(how_provenance(&backward, &["c", "o"]), "c0·o0 + c0·o1");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Property: crossfilter BT+FT refreshes always agree with the Lazy
    /// shared-scan refresh on random small datasets.
    #[test]
    fn prop_crossfilter_btft_matches_lazy(
        rows in 200usize..800,
        seed in 0u64..50,
        bar in 0u32..4,
    ) {
        let base = OntimeSpec { rows, seed }.generate();
        let dims = vec!["delay_bin", "carrier"];
        let lazy = CrossfilterSession::build(base.clone(), &dims, CrossfilterTechnique::Lazy).unwrap();
        let btft = CrossfilterSession::build(base, &dims, CrossfilterTechnique::BackwardForwardTrace).unwrap();
        let bars = lazy.views()[0].bars() as u32;
        let bar = bar % bars;
        let a: Vec<_> = lazy.interact(0, bar).unwrap().iter().map(normalized_counts).collect();
        let b: Vec<_> = btft.interact(0, bar).unwrap().iter().map(normalized_counts).collect();
        prop_assert_eq!(a, b);
    }

    /// Property: FD checking over random tables agrees between Smoke-CD and
    /// the reference hash-map implementation.
    #[test]
    fn prop_fd_checking_matches_reference(
        pairs in prop::collection::vec((0i64..15, 0i64..5), 1..300),
    ) {
        let mut builder = Relation::builder("t")
            .column("a", DataType::Int)
            .column("b", DataType::Int);
        for (a, b) in &pairs {
            builder = builder.row(vec![Value::Int(*a), Value::Int(*b)]);
        }
        let table = builder.build().unwrap();
        let fd = smoke::datagen::physician::FunctionalDependency::new("a", "b");
        let expected = reference_violations(&table, &fd);
        for technique in [ProfilingTechnique::SmokeCd, ProfilingTechnique::SmokeUg] {
            let report = check_fd(&table, &fd, technique).unwrap();
            prop_assert_eq!(&report.violations, &expected);
        }
    }
}
