//! Integration tests spanning storage → lineage → engine: end-to-end lineage
//! correctness on multi-operator plans, equivalence of the capture paradigms,
//! and property-based invariants on randomly generated data.

use proptest::prelude::*;
use smoke::core::lazy::{backward_predicate, lazy_backward};
use smoke::core::{check_lineage_round_trip, microbenchmark_aggs};
use smoke::prelude::*;

fn zipf_like_db(zs: &[i64], vs: &[f64]) -> Database {
    let mut builder = Relation::builder("zipf")
        .column("z", DataType::Int)
        .column("v", DataType::Float);
    for (z, v) in zs.iter().zip(vs) {
        builder = builder.row(vec![Value::Int(*z), Value::Float(*v)]);
    }
    let mut db = Database::new();
    db.register(builder.build().unwrap()).unwrap();
    db
}

fn groupby_plan() -> LogicalPlan {
    PlanBuilder::scan("zipf")
        .group_by(&["z"], microbenchmark_aggs("v"))
        .build()
}

#[test]
fn inject_defer_and_lazy_agree_on_backward_lineage() {
    let zs: Vec<i64> = (0..500).map(|i| (i * 7) % 13).collect();
    let vs: Vec<f64> = (0..500).map(|i| i as f64).collect();
    let db = zipf_like_db(&zs, &vs);
    let plan = groupby_plan();

    let inject = Executor::new(CaptureMode::Inject)
        .execute(&plan, &db)
        .unwrap();
    let defer = Executor::new(CaptureMode::Defer)
        .execute(&plan, &db)
        .unwrap();
    assert_eq!(inject.relation, defer.relation);

    let zipf = db.relation("zipf").unwrap();
    for out in 0..inject.relation.len() as u32 {
        let mut a = inject.lineage.backward(&[out], "zipf");
        let mut b = defer.lineage.backward(&[out], "zipf");
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);

        // Lazy rewrite over the base table returns the same rid set.
        let key = inject.relation.value(out as usize, 0);
        let pred = backward_predicate(&["z".to_string()], &[key], None);
        let lazy = lazy_backward(zipf, &pred).unwrap();
        assert_eq!(a, lazy);
    }
    check_lineage_round_trip(&inject, "zipf").unwrap();
}

#[test]
fn forward_lineage_partitions_the_input() {
    let zs: Vec<i64> = (0..300).map(|i| i % 7).collect();
    let vs: Vec<f64> = (0..300).map(|i| (i % 10) as f64).collect();
    let db = zipf_like_db(&zs, &vs);
    let out = Executor::new(CaptureMode::Inject)
        .execute(&groupby_plan(), &db)
        .unwrap();

    // Every input rid maps to exactly one group, and the group's key matches
    // the input's key.
    for rid in 0..300u32 {
        let outs = out.lineage.forward(&[rid], "zipf");
        assert_eq!(outs.len(), 1);
        let group_key = out.relation.value(outs[0] as usize, 0);
        assert_eq!(group_key, Value::Int(zs[rid as usize]));
    }
    // Backward lineage cardinalities sum to the input size.
    let total: usize = (0..out.relation.len() as u32)
        .map(|o| out.lineage.backward(&[o], "zipf").len())
        .sum();
    assert_eq!(total, 300);
}

#[test]
fn spja_plan_with_join_selection_and_aggregation() {
    // orders(o_id, region) ⋈ items(i_oid, price > 10) grouped by region.
    let mut orders = Relation::builder("orders")
        .column("o_id", DataType::Int)
        .column("region", DataType::Str);
    for i in 0..20 {
        orders = orders.row(vec![
            Value::Int(i),
            Value::Str(if i % 2 == 0 { "east" } else { "west" }.into()),
        ]);
    }
    let mut items = Relation::builder("items")
        .column("i_oid", DataType::Int)
        .column("price", DataType::Float);
    for i in 0..200 {
        items = items.row(vec![Value::Int(i % 20), Value::Float((i % 25) as f64)]);
    }
    let mut db = Database::new();
    db.register(orders.build().unwrap()).unwrap();
    db.register(items.build().unwrap()).unwrap();

    let plan = PlanBuilder::scan("orders")
        .join(PlanBuilder::scan("items"), &["o_id"], &["i_oid"])
        .select(Expr::col("price").gt(Expr::lit(10.0)))
        .group_by(
            &["region"],
            vec![AggExpr::count("cnt"), AggExpr::sum("price", "total")],
        )
        .build();

    let out = Executor::new(CaptureMode::Inject)
        .execute(&plan, &db)
        .unwrap();
    assert_eq!(out.relation.len(), 2);
    check_lineage_round_trip(&out, "items").unwrap();
    check_lineage_round_trip(&out, "orders").unwrap();

    // The backward lineage of each region bar only contains items priced
    // above the selection threshold and orders of the right region.
    let items_rel = db.relation("items").unwrap();
    let orders_rel = db.relation("orders").unwrap();
    for bar in 0..2u32 {
        let region = out.relation.value(bar as usize, 0);
        for rid in out.lineage.backward(&[bar], "items") {
            assert!(items_rel.value(rid as usize, 1).as_float().unwrap() > 10.0);
        }
        for rid in out.lineage.backward(&[bar], "orders") {
            assert_eq!(orders_rel.value(rid as usize, 1), region);
        }
    }
}

#[test]
fn counts_match_backward_cardinalities() {
    let zs: Vec<i64> = (0..400).map(|i| (i * 31) % 11).collect();
    let vs: Vec<f64> = (0..400).map(|i| i as f64 * 0.5).collect();
    let db = zipf_like_db(&zs, &vs);
    let out = Executor::new(CaptureMode::Inject)
        .execute(&groupby_plan(), &db)
        .unwrap();
    let cnt_idx = out.relation.column_index("cnt").unwrap();
    for o in 0..out.relation.len() {
        let cnt = out.relation.value(o, cnt_idx).as_int().unwrap() as usize;
        assert_eq!(out.lineage.backward(&[o as u32], "zipf").len(), cnt);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Property: for any data, backward and forward lineage of an aggregation
    /// are inverses, every input appears in exactly one group, and the
    /// backward rid sets equal the lazy rewrite's rid sets.
    #[test]
    fn prop_groupby_lineage_invariants(
        zs in prop::collection::vec(0i64..20, 1..300),
        seed in 0u64..1000,
    ) {
        let vs: Vec<f64> = zs.iter().enumerate().map(|(i, _)| ((i as u64 + seed) % 97) as f64).collect();
        let db = zipf_like_db(&zs, &vs);
        let out = Executor::new(CaptureMode::Inject).execute(&groupby_plan(), &db).unwrap();
        let zipf = db.relation("zipf").unwrap();

        // Inversion.
        check_lineage_round_trip(&out, "zipf").unwrap();

        // Partition property.
        let mut covered = vec![0usize; zs.len()];
        for o in 0..out.relation.len() as u32 {
            for rid in out.lineage.backward(&[o], "zipf") {
                covered[rid as usize] += 1;
            }
        }
        prop_assert!(covered.iter().all(|&c| c == 1));

        // Lazy equivalence for every group.
        for o in 0..out.relation.len() as u32 {
            let key = out.relation.value(o as usize, 0);
            let pred = backward_predicate(&["z".to_string()], &[key], None);
            let lazy = lazy_backward(zipf, &pred).unwrap();
            let mut traced = out.lineage.backward(&[o], "zipf");
            traced.sort_unstable();
            prop_assert_eq!(traced, lazy);
        }
    }

    /// Property: selection lineage is exactly the set of qualifying rids, in
    /// order, for arbitrary thresholds.
    #[test]
    fn prop_selection_lineage_matches_predicate(
        vs in prop::collection::vec(0.0f64..100.0, 1..400),
        threshold in 0.0f64..100.0,
    ) {
        let zs: Vec<i64> = vs.iter().map(|_| 0).collect();
        let db = zipf_like_db(&zs, &vs);
        let plan = PlanBuilder::scan("zipf")
            .select(Expr::col("v").lt(Expr::lit(threshold)))
            .build();
        let out = Executor::new(CaptureMode::Inject).execute(&plan, &db).unwrap();
        let expected: Vec<u32> = vs
            .iter()
            .enumerate()
            .filter(|(_, &v)| v < threshold)
            .map(|(i, _)| i as u32)
            .collect();
        prop_assert_eq!(out.relation.len(), expected.len());
        let traced: Vec<u32> = (0..out.relation.len() as u32)
            .flat_map(|o| out.lineage.backward(&[o], "zipf"))
            .collect();
        prop_assert_eq!(traced, expected);
    }

    /// Property: join lineage pairs always satisfy the join condition.
    #[test]
    fn prop_join_lineage_pairs_satisfy_join_keys(
        right_keys in prop::collection::vec(0i64..8, 1..200),
    ) {
        let mut left = Relation::builder("dim").column("id", DataType::Int).column("tag", DataType::Str);
        for i in 0..8 {
            left = left.row(vec![Value::Int(i), Value::Str(format!("t{i}"))]);
        }
        let mut right = Relation::builder("fact").column("k", DataType::Int).column("m", DataType::Float);
        for (i, k) in right_keys.iter().enumerate() {
            right = right.row(vec![Value::Int(*k), Value::Float(i as f64)]);
        }
        let mut db = Database::new();
        db.register(left.build().unwrap()).unwrap();
        db.register(right.build().unwrap()).unwrap();

        let plan = PlanBuilder::scan("dim")
            .join(PlanBuilder::scan("fact"), &["id"], &["k"])
            .build();
        let out = Executor::new(CaptureMode::Inject).execute(&plan, &db).unwrap();
        prop_assert_eq!(out.relation.len(), right_keys.len());
        let dim = db.relation("dim").unwrap();
        let fact = db.relation("fact").unwrap();
        for o in 0..out.relation.len() as u32 {
            let l = out.lineage.backward(&[o], "dim")[0];
            let r = out.lineage.backward(&[o], "fact")[0];
            prop_assert_eq!(dim.value(l as usize, 0), fact.value(r as usize, 0));
        }
    }
}
