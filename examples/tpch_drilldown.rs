//! The "Overview first, zoom and filter, details on demand" workflow of the
//! paper's §6.4, expressed over TPC-H Q1:
//!
//! 1. the base query (Q1) renders an overview bar chart with lineage capture;
//! 2. **details on demand** is a backward lineage query from one bar;
//! 3. **zoom** (Q1a) drills into a bar by ship year/month via an index scan;
//! 4. **filter** (Q1b) applies templated predicates answered from the
//!    data-skipping partitioned index;
//! 5. a further drill-down (Q1c) on `l_tax` is answered instantly from the
//!    aggregates materialized by the group-by push-down.
//!
//! Run with `cargo run --release --example tpch_drilldown`.

use smoke::core::query::{consume_aggregate, consume_from_cube, consume_with_skipping};
use smoke::core::{AggPushdown, CaptureConfig, WorkloadOptions};
use smoke::datagen::tpch::TpchSpec;
use smoke::datagen::tpch_queries::{drilldown_aggs, q1, q1a_keys, q1b_partition_attrs};
use smoke::prelude::*;

fn main() -> smoke::core::Result<()> {
    let db = TpchSpec {
        scale_factor: 0.003,
        seed: 7,
    }
    .generate();
    let lineitem = db.relation("lineitem").unwrap();
    println!("lineitem rows: {}", lineitem.len());

    // Capture Q1 with both workload-aware optimizations enabled: data
    // skipping on (l_shipmode, l_shipinstruct) and aggregation push-down on
    // l_tax.
    let config = CaptureConfig::inject().with_workload(WorkloadOptions {
        skipping_partition_by: q1b_partition_attrs(),
        agg_pushdown: Some(AggPushdown {
            partition_by: vec!["l_tax".to_string()],
            aggs: drilldown_aggs(),
        }),
        ..Default::default()
    });
    let overview = Executor::with_config(config).execute(&q1(), &db)?;
    println!("\noverview (Q1): {} bars", overview.relation.len());
    for rid in 0..overview.relation.len() {
        let row = overview.relation.row_values(rid);
        println!(
            "  bar {rid}: flag={} status={} count={}",
            row[0], row[1], row[9]
        );
    }

    // Details on demand: backward lineage of bar 0.
    let bar = 0u32;
    let lineage = overview.lineage.backward(&[bar], "lineitem");
    println!("\nbar {bar} derives from {} lineitem rows", lineage.len());

    // Zoom (Q1a): statistics by ship year/month over the bar's lineage.
    let zoom = consume_aggregate(lineitem, &lineage, &q1a_keys(), &drilldown_aggs())?;
    println!(
        "Q1a drill-down produced {} (year, month) groups",
        zoom.len()
    );

    // Filter (Q1b): templated predicate answered from the partitioned index.
    let skipping = overview
        .artifacts
        .partitioned
        .as_ref()
        .expect("skipping index");
    let filtered = consume_with_skipping(
        lineitem,
        skipping,
        bar,
        "MAIL|NONE",
        &q1a_keys(),
        &drilldown_aggs(),
    )?;
    println!(
        "Q1b (l_shipmode = MAIL, l_shipinstruct = NONE) produced {} groups from the skipped partition",
        filtered.len()
    );

    // Drill-down (Q1c): answered from the materialized cube without touching
    // lineitem at all.
    let cube = overview.artifacts.cube.as_ref().expect("push-down cube");
    let by_tax = consume_from_cube(cube, bar)?;
    println!(
        "Q1c (group by l_tax) answered from the cube: {} rows",
        by_tax.len()
    );
    assert!(by_tax.len() > 1);
    Ok(())
}
