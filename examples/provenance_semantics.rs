//! Deriving classic provenance semantics (which / why / how) from Smoke's
//! lineage indexes (paper Appendix E).
//!
//! The example reproduces the appendix's customers ⋈ orders scenario: the
//! aggregate output for Bob is derived from customer rid `a1` paired with two
//! order rids, and the which-, why-, and how-provenance fall out of the
//! positionally-aligned backward indexes.
//!
//! Run with `cargo run --example provenance_semantics`.

use smoke::lineage::semantics::{how_provenance, which_provenance, why_provenance};
use smoke::prelude::*;

fn main() -> smoke::core::Result<()> {
    let customers = Relation::builder("customers")
        .column("cid", DataType::Int)
        .column("cname", DataType::Str)
        .row(vec![Value::Int(1), Value::Str("Bob".into())])
        .row(vec![Value::Int(2), Value::Str("Alice".into())])
        .build()
        .unwrap();
    let orders = Relation::builder("orders")
        .column("ocid", DataType::Int)
        .column("pname", DataType::Str)
        .row(vec![Value::Int(1), Value::Str("iPhone".into())])
        .row(vec![Value::Int(1), Value::Str("iPhone".into())])
        .row(vec![Value::Int(2), Value::Str("XBox".into())])
        .build()
        .unwrap();
    let mut db = Database::new();
    db.register(customers).unwrap();
    db.register(orders).unwrap();

    // SELECT COUNT(*), cname, pname FROM customers JOIN orders ON cid = ocid
    // GROUP BY cname, pname
    let plan = PlanBuilder::scan("customers")
        .join(PlanBuilder::scan("orders"), &["cid"], &["ocid"])
        .group_by(&["cname", "pname"], vec![AggExpr::count("cnt")])
        .build();
    let out = Executor::new(CaptureMode::Inject).execute(&plan, &db)?;

    for rid in 0..out.relation.len() {
        println!("output o{rid}: {:?}", out.relation.row_values(rid));
    }

    let bob = out
        .find_output(|row| row[0] == Value::Str("Bob".into()))
        .expect("Bob group exists");

    // Positionally-aligned backward lineage per input relation.
    let cust = out
        .lineage
        .table("customers")
        .unwrap()
        .backward()
        .lookup(bob);
    let ords = out.lineage.table("orders").unwrap().backward().lookup(bob);
    println!("\nbackward lineage of Bob's output: customers {cust:?}, orders {ords:?}");

    let backward = vec![cust, ords];
    println!("which-provenance: {:?}", which_provenance(&backward));
    println!(
        "why-provenance (witnesses): {:?}",
        why_provenance(&backward)
    );
    println!(
        "how-provenance (polynomial): {}",
        how_provenance(&backward, &["a", "b"])
    );

    assert_eq!(how_provenance(&backward, &["a", "b"]), "a0·b0 + a0·b1");
    Ok(())
}
