//! Quickstart: build a small database, run an instrumented aggregation, and
//! ask backward / forward lineage questions.
//!
//! Run with `cargo run --example quickstart`.

use smoke::prelude::*;

fn main() -> smoke::core::Result<()> {
    // 1. Build a tiny sales table and register it in a catalog.
    let sales = Relation::builder("sales")
        .column("region", DataType::Str)
        .column("product", DataType::Str)
        .column("amount", DataType::Float)
        .row(vec!["east".into(), "widget".into(), Value::Float(10.0)])
        .row(vec!["west".into(), "widget".into(), Value::Float(25.0)])
        .row(vec!["east".into(), "gadget".into(), Value::Float(40.0)])
        .row(vec!["east".into(), "widget".into(), Value::Float(5.0)])
        .row(vec!["west".into(), "gadget".into(), Value::Float(30.0)])
        .build()
        .unwrap();
    let mut db = Database::new();
    db.register(sales).unwrap();

    // 2. Express the base query: revenue per region.
    let plan = PlanBuilder::scan("sales")
        .group_by(
            &["region"],
            vec![AggExpr::sum("amount", "revenue"), AggExpr::count("orders")],
        )
        .build();

    // 3. Execute with Inject instrumentation (Smoke-I): the output *and* the
    //    lineage indexes are produced in one pass.
    let result = Executor::new(CaptureMode::Inject).execute(&plan, &db)?;
    println!("revenue per region:");
    for rid in 0..result.relation.len() {
        let row = result.relation.row_values(rid);
        println!("  {:?}", row);
    }

    // 4. Backward lineage: which input records produced the "east" bar?
    let east = result
        .find_output(|row| row[0] == Value::Str("east".into()))
        .expect("east group exists");
    let east_inputs = result.lineage.backward(&[east], "sales");
    println!("backward lineage of the east group: rids {east_inputs:?}");
    assert_eq!(east_inputs, vec![0, 2, 3]);

    // 5. Forward lineage: which output bar does sales rid 4 contribute to?
    let touched = result.lineage.forward(&[4], "sales");
    println!("forward lineage of sales rid 4: output rids {touched:?}");
    assert_eq!(
        result.relation.value(touched[0] as usize, 0),
        Value::Str("west".into())
    );

    // 6. A lineage-consuming query: revenue of the east group broken down by
    //    product, evaluated as an index scan over the lineage subset.
    let db_sales = db.relation("sales").unwrap();
    let drill = smoke::core::query::consume_aggregate(
        db_sales,
        &east_inputs,
        &["product".to_string()],
        &[AggExpr::sum("amount", "revenue")],
    )?;
    println!("east region revenue by product:");
    for rid in 0..drill.len() {
        println!("  {:?}", drill.row_values(rid));
    }
    Ok(())
}
