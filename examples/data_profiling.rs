//! Data profiling with lineage (paper §6.5.2): detect functional-dependency
//! violations over a Physician-Compare-like table and build the bipartite
//! graph connecting violations to the tuples responsible, comparing the
//! `Smoke-CD`, `Smoke-UG`, and simulated `Metanome-UG` techniques.
//!
//! Run with `cargo run --release --example data_profiling`.

use smoke::apps::profiling::{check_all_fds, ProfilingTechnique};
use smoke::datagen::physician::{paper_fds, PhysicianSpec};

fn main() {
    let table = PhysicianSpec {
        rows: 40_000,
        practices: 1_500,
        violation_rate: 0.03,
        seed: 23,
    }
    .generate();
    let fds = paper_fds();
    println!(
        "physician table: {} rows; checking {} FDs",
        table.len(),
        fds.len()
    );

    for technique in [
        ProfilingTechnique::MetanomeUg,
        ProfilingTechnique::SmokeUg,
        ProfilingTechnique::SmokeCd,
    ] {
        let reports = check_all_fds(&table, &fds, technique).unwrap();
        println!("\n{technique:?}:");
        for report in &reports {
            println!(
                "  {:>4} -> {:<7} violations = {:>4}, bipartite edges = {:>6}, latency = {:>8.2} ms",
                report.fd.lhs,
                report.fd.rhs,
                report.violation_count(),
                report.edge_count(),
                report.elapsed.as_secs_f64() * 1e3
            );
        }
    }

    // Show a concrete violation with its responsible tuples.
    let reports = check_all_fds(&table, &fds, ProfilingTechnique::SmokeCd).unwrap();
    if let Some(report) = reports.iter().find(|r| r.violation_count() > 0) {
        let violation = &report.violations[0];
        let tuples = &report.bipartite[violation];
        println!(
            "\nexample: {} value {:?} maps to multiple {} values across {} tuples (first rids: {:?})",
            report.fd.lhs,
            violation,
            report.fd.rhs,
            tuples.len(),
            &tuples[..tuples.len().min(5)]
        );
    }
}
