//! A crossfilter dashboard over the Ontime-like flights dataset (paper
//! §6.5.1): four linked group-by COUNT views; highlighting a bar in one view
//! refreshes the others over the lineage subset, comparing the `Lazy`, `BT`,
//! `BT+FT`, and partial-cube techniques.
//!
//! Run with `cargo run --release --example crossfilter_dashboard`.

use std::time::Instant;

use smoke::apps::crossfilter::{normalized_counts, CrossfilterSession, CrossfilterTechnique};
use smoke::datagen::ontime::{view_dimensions, OntimeSpec};

fn main() {
    let base = OntimeSpec {
        rows: 60_000,
        seed: 17,
    }
    .generate();
    let dims = view_dimensions();
    println!("flights table: {} rows, views over {:?}", base.len(), dims);

    let techniques = [
        CrossfilterTechnique::Lazy,
        CrossfilterTechnique::BackwardTrace,
        CrossfilterTechnique::BackwardForwardTrace,
        CrossfilterTechnique::PartialCube,
    ];

    let mut reference: Option<Vec<Vec<(String, i64)>>> = None;
    for technique in techniques {
        let build_start = Instant::now();
        let session = CrossfilterSession::build(base.clone(), &dims, technique).unwrap();
        let build = build_start.elapsed();

        // Interaction: highlight the first bar of the carrier view (view 3).
        let interact_start = Instant::now();
        let refreshed = session.interact(3, 0).unwrap();
        let interact = interact_start.elapsed();

        println!(
            "{technique:?}: build = {:>8.2} ms, one interaction = {:>7.3} ms, refreshed views = {}",
            build.as_secs_f64() * 1e3,
            interact.as_secs_f64() * 1e3,
            refreshed.len()
        );

        // All techniques must produce identical refreshed views.
        let normalized: Vec<Vec<(String, i64)>> = refreshed.iter().map(normalized_counts).collect();
        match &reference {
            None => reference = Some(normalized),
            Some(expected) => assert_eq!(&normalized, expected, "{technique:?} disagrees"),
        }
    }
    println!("all techniques agree on the refreshed views");
}
