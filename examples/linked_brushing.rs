//! Linked brushing between two visualization views (the paper's Figure 1).
//!
//! Two views are computed over the same input table: `V1` is a scatter plot
//! of price vs. revenue (a filtered selection) and `V2` is a bar chart of
//! profit per product (an aggregation). Selecting marks in `V1` highlights
//! the bars in `V2` that share input records — a backward lineage query
//! followed by a forward lineage query.
//!
//! Run with `cargo run --example linked_brushing`.

use smoke::apps::brushing::LinkedViews;
use smoke::prelude::*;

fn main() -> smoke::core::Result<()> {
    // The shared input relation X(product, price, revenue, profit).
    let mut x = Relation::builder("X")
        .column("product", DataType::Str)
        .column("price", DataType::Float)
        .column("revenue", DataType::Float)
        .column("profit", DataType::Float);
    let rows = [
        ("widget", 10.0, 100.0, 20.0),
        ("widget", 12.0, 80.0, 10.0),
        ("gadget", 50.0, 500.0, 200.0),
        ("gadget", 55.0, 450.0, 150.0),
        ("doohickey", 5.0, 20.0, 1.0),
        ("doohickey", 6.0, 25.0, 2.0),
    ];
    for (p, price, rev, prof) in rows {
        x = x.row(vec![
            Value::Str(p.into()),
            Value::Float(price),
            Value::Float(rev),
            Value::Float(prof),
        ]);
    }
    let mut db = Database::new();
    db.register(x.build().unwrap()).unwrap();

    // V1: points with price > 8 (scatter of price vs revenue).
    let v1 = PlanBuilder::scan("X")
        .select(Expr::col("price").gt(Expr::lit(8.0)))
        .build();
    // V2: profit per product (bar chart).
    let v2 = PlanBuilder::scan("X")
        .group_by(&["product"], vec![AggExpr::sum("profit", "total_profit")])
        .build();

    let linked = LinkedViews::build(&db, &v1, &v2, "X")?;
    println!(
        "V1 has {} marks, V2 has {} bars",
        linked.v1.relation.len(),
        linked.v2.relation.len()
    );

    // The user brushes the first two points of V1 (both "widget" rows).
    let highlighted = linked.brush(&[0, 1]);
    println!("brushing V1 marks [0, 1] highlights V2 bars {highlighted:?}:");
    for &bar in &highlighted {
        println!("  {:?}", linked.v2.relation.row_values(bar as usize));
    }
    assert_eq!(highlighted.len(), 1);

    // And the reverse direction: selecting the "gadget" bar in V2 highlights
    // the gadget points in V1.
    let gadget = linked
        .v2
        .find_output(|row| row[0] == Value::Str("gadget".into()))
        .unwrap();
    let marks = linked.brush_reverse(&[gadget]);
    println!("brushing the gadget bar highlights V1 marks {marks:?}");
    assert_eq!(marks.len(), 2);
    Ok(())
}
